//! Agent behaviors: the suggested strategy and a library of deviations.
//!
//! A distributed mechanism's agents can manipulate not just their *inputs*
//! (bids — "information-revelation actions") but the *algorithm itself*
//! ("computational actions", Definitions 12–16 of the paper). Faithfulness
//! (Theorem 5) says no deviation beats the suggested strategy; rather than
//! take the theorem's word for it, the [`crate::audit`] harness executes
//! every behavior in this catalogue and measures the deviator's utility.
//!
//! Bid misreporting is *not* listed here: reporting `y ≠ t` is an
//! information-revelation action audited by the centralized truthfulness
//! machinery (`dmw_mechanism::audit`), and the runner accepts an arbitrary
//! bid matrix. The behaviors below are protocol-level (computational and
//! message-passing) deviations, mapped to the cases analysed in the proofs
//! of Theorems 4 and 8.

use serde::{Deserialize, Serialize};
use std::fmt;

/// How published values (`Λ/Ψ`, disclosures, excluded pairs) are
/// verified.
///
/// Full mutual verification costs each agent `Θ(mn³ log p)` — more than
/// the paper's Table 1 budget; the rotation scheme checks each value with
/// `c + 1` designated verifiers (≥ 1 honest under ≤ `c` faults), keeping
/// detection guaranteed at `Θ(mn² log p)`. The `table1-comp` experiment
/// measures both; see DESIGN.md, "Rotation verification".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum VerificationPolicy {
    /// Each published value is verified by its `c + 1` cyclically-next
    /// live agents (the default; matches Table 1's cost).
    #[default]
    Rotation,
    /// Every agent verifies every published value (belt-and-braces;
    /// `Θ(mn³ log p)` per agent).
    Full,
}

/// How one agent executes the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Behavior {
    /// The suggested strategy `χ_suggest`: follow the protocol exactly.
    #[default]
    Suggested,
    /// Send a corrupted `e`-share to one victim while staying otherwise
    /// honest (Theorem 4: "if `A_i` incorrectly computes its shares … the
    /// protocol will be aborted when verifying them").
    CorruptShareTo {
        /// The victim agent index.
        victim: usize,
    },
    /// Publish commitments with one tampered entry (detected by every
    /// receiver via equations (7)–(9)).
    TamperedCommitments,
    /// Broadcast commitments but never send the private shares (Theorem 4:
    /// "an agent not receiving its share will abort").
    WithholdShares,
    /// Send shares to agents with index below `threshold` only — selective
    /// delivery, detected through disagreeing participation masks.
    SelectiveShares {
        /// Agents with index `< threshold` receive shares; the rest do not.
        threshold: usize,
    },
    /// Send nothing at all (strategic silence; indistinguishable from a
    /// crash and tolerated up to `c` occurrences).
    Silent,
    /// Execute Phase II honestly, then fall silent (tests the resolution
    /// threshold: the bid is committed and still participates in `E`).
    SilentAfterBidding,
    /// Publish a garbage `Λ` (fails equation (11)).
    WrongLambda,
    /// Disclose tampered `f`-values in Phase III.3 (fails equation (13)).
    WrongDisclosure,
    /// Publish a tampered winner-excluded pair (fails the post-exclusion
    /// equation (11) check).
    WrongExcluded,
    /// Submit a payment claim inflated in the deviator's own favour
    /// (Phase IV: the payment infrastructure detects the disagreement and
    /// dispenses nothing).
    InflatedPaymentClaim {
        /// Amount (in bid units) added to the deviator's own payment entry.
        delta: u64,
    },
}

impl Behavior {
    /// `true` for the suggested strategy.
    pub fn is_suggested(&self) -> bool {
        matches!(self, Behavior::Suggested)
    }

    /// A short label for experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            Behavior::Suggested => "suggested",
            Behavior::CorruptShareTo { .. } => "corrupt-share",
            Behavior::TamperedCommitments => "tampered-commitments",
            Behavior::WithholdShares => "withhold-shares",
            Behavior::SelectiveShares { .. } => "selective-shares",
            Behavior::Silent => "silent",
            Behavior::SilentAfterBidding => "silent-after-bidding",
            Behavior::WrongLambda => "wrong-lambda",
            Behavior::WrongDisclosure => "wrong-disclosure",
            Behavior::WrongExcluded => "wrong-excluded",
            Behavior::InflatedPaymentClaim { .. } => "inflated-payment-claim",
        }
    }

    /// The full catalogue of deviations audited by the faithfulness
    /// experiment, instantiated for an `n`-agent deployment viewed from
    /// deviator index `me`.
    ///
    /// # Example
    /// ```
    /// use dmw::Behavior;
    ///
    /// let all = Behavior::catalogue(6, 2);
    /// assert!(all.len() >= 10);
    /// assert!(all.iter().all(|b| !b.is_suggested()));
    /// ```
    pub fn catalogue(n: usize, me: usize) -> Vec<Behavior> {
        let victim = (me + 1) % n;
        vec![
            Behavior::CorruptShareTo { victim },
            Behavior::TamperedCommitments,
            Behavior::WithholdShares,
            Behavior::SelectiveShares { threshold: n / 2 },
            Behavior::Silent,
            Behavior::SilentAfterBidding,
            Behavior::WrongLambda,
            Behavior::WrongDisclosure,
            Behavior::WrongExcluded,
            Behavior::InflatedPaymentClaim { delta: 5 },
        ]
    }
}

impl fmt::Display for Behavior {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_suggested() {
        assert!(Behavior::default().is_suggested());
        assert!(!Behavior::Silent.is_suggested());
    }

    #[test]
    fn labels_are_distinct() {
        let all = Behavior::catalogue(5, 0);
        let labels: std::collections::HashSet<_> = all.iter().map(|b| b.label()).collect();
        assert_eq!(labels.len(), all.len());
        assert_eq!(Behavior::Suggested.to_string(), "suggested");
    }

    #[test]
    fn catalogue_never_targets_self() {
        for me in 0..5 {
            for b in Behavior::catalogue(5, me) {
                if let Behavior::CorruptShareTo { victim } = b {
                    assert_ne!(victim, me);
                }
            }
        }
    }
}
