//! Pseudonymity and the anonymity half of Theorem 10.
//!
//! "The risk of divulging the winner is mitigated by using pseudonyms to
//! hide the real identities" (Remark after Theorem 10). The protocol
//! itself only ever names pseudonym *slots* `α_1 … α_n`; the binding from
//! real identities to slots is established once, at initialization, and
//! known in full to nobody (each agent knows only its own slot).
//!
//! [`PseudonymDirectory`] models that binding and answers the question
//! the anonymity claim is about: *after a run, which identities are
//! linkable, and by whom?*
//!
//! * the **winner's identity** becomes linkable the moment the task is
//!   actually executed — intrinsic to scheduling, as the paper says;
//! * each **coalition member** can link exactly itself — its own slot is
//!   the only binding it holds;
//! * every other losing agent stays anonymous: its slot appears in the
//!   transcript, but nothing connects the slot to an identity.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// The confidential identity↔slot binding created at initialization.
///
/// In a deployment each agent would learn only its own row; the tests and
/// experiments play the global observer to *measure* what leaks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PseudonymDirectory {
    /// `identities[slot]` = the real identity bound to pseudonym slot
    /// `slot`.
    identities: Vec<String>,
}

impl PseudonymDirectory {
    /// Binds the given identities to pseudonym slots by a uniform random
    /// permutation.
    ///
    /// # Panics
    ///
    /// Panics if `identities` contains duplicates (identities must be
    /// distinguishable to be worth protecting).
    ///
    /// # Example
    /// ```
    /// use dmw::identity::PseudonymDirectory;
    /// use rand::SeedableRng;
    ///
    /// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    /// let ids = vec!["acme".into(), "globex".into(), "initech".into()];
    /// let directory = PseudonymDirectory::assign(ids, &mut rng);
    /// // A run revealing slot 0's winner leaves the other two anonymous.
    /// assert_eq!(directory.anonymous_count(&[0], &[]), 2);
    /// ```
    pub fn assign<R: Rng + ?Sized>(identities: Vec<String>, rng: &mut R) -> Self {
        let set: BTreeSet<&String> = identities.iter().collect();
        assert_eq!(set.len(), identities.len(), "identities must be distinct");
        let mut identities = identities;
        identities.shuffle(rng);
        PseudonymDirectory { identities }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.identities.len()
    }

    /// `true` iff the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.identities.is_empty()
    }

    /// The identity bound to a slot — information only the slot's owner
    /// (or the initialization authority) holds.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn identity_of(&self, slot: usize) -> &str {
        &self.identities[slot]
    }

    /// The slot of an identity, if present.
    pub fn slot_of(&self, identity: &str) -> Option<usize> {
        self.identities.iter().position(|i| i == identity)
    }

    /// The identities an observer can link after a run, given the slots
    /// revealed as winners (whose identity leaks through task execution)
    /// and the slots of a coalition (who each know their own binding).
    /// Everything not returned remains anonymous.
    pub fn linkable(&self, winner_slots: &[usize], coalition_slots: &[usize]) -> Vec<&str> {
        // BTreeSet both dedups and yields the slots in sorted order, so
        // the linkable set is deterministic without a separate sort.
        winner_slots
            .iter()
            .chain(coalition_slots)
            .copied()
            .collect::<BTreeSet<_>>()
            .into_iter()
            .map(|s| self.identity_of(s))
            .collect()
    }

    /// The number of identities that remain anonymous for that observer.
    pub fn anonymous_count(&self, winner_slots: &[usize], coalition_slots: &[usize]) -> usize {
        self.len() - self.linkable(winner_slots, coalition_slots).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("org-{i}")).collect()
    }

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(2468)
    }

    #[test]
    fn assignment_is_a_permutation() {
        let directory = PseudonymDirectory::assign(names(8), &mut rng());
        assert_eq!(directory.len(), 8);
        let mut seen = BTreeSet::new();
        for slot in 0..8 {
            assert!(seen.insert(directory.identity_of(slot).to_string()));
        }
        // Round trip.
        for slot in 0..8 {
            let id = directory.identity_of(slot).to_string();
            assert_eq!(directory.slot_of(&id), Some(slot));
        }
        assert_eq!(directory.slot_of("nobody"), None);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn duplicate_identities_rejected() {
        let mut ids = names(4);
        ids[3] = ids[0].clone();
        let _ = PseudonymDirectory::assign(ids, &mut rng());
    }

    #[test]
    fn losers_outside_the_coalition_stay_anonymous() {
        let directory = PseudonymDirectory::assign(names(8), &mut rng());
        // One winner, a coalition of two.
        let linkable = directory.linkable(&[3], &[0, 5]);
        assert_eq!(linkable.len(), 3);
        assert_eq!(directory.anonymous_count(&[3], &[0, 5]), 5);
        // A losing non-coalition slot's identity is not in the linkable
        // set.
        let hidden = directory.identity_of(6);
        assert!(!linkable.contains(&hidden));
    }

    #[test]
    fn winner_in_coalition_is_not_double_counted() {
        let directory = PseudonymDirectory::assign(names(5), &mut rng());
        let linkable = directory.linkable(&[2], &[2, 4]);
        assert_eq!(linkable.len(), 2);
    }

    #[test]
    fn full_coalition_links_everyone() {
        let directory = PseudonymDirectory::assign(names(4), &mut rng());
        let all: Vec<usize> = (0..4).collect();
        assert_eq!(directory.anonymous_count(&[], &all), 0);
    }

    #[test]
    fn slot_binding_is_shuffled() {
        // With 12 identities the identity permutation is almost surely
        // not the identity map.
        let directory = PseudonymDirectory::assign(names(12), &mut rng());
        let fixed_points = (0..12)
            .filter(|&s| directory.identity_of(s) == format!("org-{s}"))
            .count();
        assert!(fixed_points < 12, "shuffle left every binding in place");
    }
}
