//! Experiment harnesses for the game-theoretic theorems.
//!
//! * [`faithfulness_table`] — Theorems 4–5: for every deviation in the
//!   [`Behavior`] catalogue, run the protocol with one deviator and
//!   compare its utility against the suggested strategy. Faithfulness
//!   predicts `U(deviation) ≤ U(suggested)` on every row.
//! * [`voluntary_participation_table`] — Theorems 6–9: for every deviation
//!   mix, check that each agent *following the suggested strategy* ends
//!   with non-negative utility.
//!
//! Both return plain rows so the `reproduce` harness can print them as the
//! experiment tables recorded in EXPERIMENTS.md.

use crate::config::DmwConfig;
use crate::runner::{utilities, DmwRunner};
use crate::strategy::Behavior;
use dmw_mechanism::ExecutionTimes;
use dmw_simnet::FaultPlan;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One row of the faithfulness experiment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaithfulnessRow {
    /// The deviation the deviator executed.
    pub behavior: &'static str,
    /// Index of the deviating agent.
    pub deviator: usize,
    /// Whether the run completed (vs aborted).
    pub completed: bool,
    /// Abort reason label when aborted.
    pub abort: Option<String>,
    /// Deviator's utility under the suggested strategy (baseline run).
    pub suggested_utility: i128,
    /// Deviator's utility under the deviation.
    pub deviating_utility: i128,
}

impl FaithfulnessRow {
    /// `true` when the row is consistent with faithfulness.
    pub fn faithful(&self) -> bool {
        self.deviating_utility <= self.suggested_utility
    }
}

/// Runs the full deviation catalogue for `deviator` on one instance.
/// `truth` is used both as the (honest) bid matrix and for utility
/// evaluation — deviations here are protocol-level, not misreports.
///
/// # Errors
///
/// Propagates configuration/validation errors from the runner.
pub fn faithfulness_table<R: Rng + ?Sized>(
    config: &DmwConfig,
    truth: &ExecutionTimes,
    deviator: usize,
    rng: &mut R,
) -> Result<Vec<FaithfulnessRow>, crate::error::DmwError> {
    let n = config.agents();
    let runner = DmwRunner::new(config.clone());
    let baseline = runner.run_honest(truth, rng)?;
    let suggested_utility = utilities(&baseline, truth)[deviator];
    let mut rows = Vec::new();
    for behavior in Behavior::catalogue(n, deviator) {
        let mut behaviors = vec![Behavior::Suggested; n];
        behaviors[deviator] = behavior;
        let run = runner.run(truth, &behaviors, FaultPlan::none(n), rng)?;
        let deviating_utility = utilities(&run, truth)[deviator];
        rows.push(FaithfulnessRow {
            behavior: behavior.label(),
            deviator,
            completed: run.is_completed(),
            abort: run.abort_reason().map(|r| r.to_string()),
            suggested_utility,
            deviating_utility,
        });
    }
    Ok(rows)
}

/// One row of the strong-voluntary-participation experiment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VoluntaryRow {
    /// The deviation executed by the non-compliant agent.
    pub behavior: &'static str,
    /// Whether the run completed.
    pub completed: bool,
    /// The minimum utility over all agents that followed the suggested
    /// strategy. Strong voluntary participation predicts `≥ 0`.
    pub min_compliant_utility: i128,
}

/// For each deviation, measures the worst utility a *compliant* agent
/// receives (Theorems 6–9 predict it is never negative).
///
/// # Errors
///
/// Propagates configuration/validation errors from the runner.
pub fn voluntary_participation_table<R: Rng + ?Sized>(
    config: &DmwConfig,
    truth: &ExecutionTimes,
    deviator: usize,
    rng: &mut R,
) -> Result<Vec<VoluntaryRow>, crate::error::DmwError> {
    let n = config.agents();
    let runner = DmwRunner::new(config.clone());
    let mut rows = Vec::new();
    for behavior in Behavior::catalogue(n, deviator) {
        let mut behaviors = vec![Behavior::Suggested; n];
        behaviors[deviator] = behavior;
        let run = runner.run(truth, &behaviors, FaultPlan::none(n), rng)?;
        let us = utilities(&run, truth);
        let min_compliant_utility = (0..n)
            .filter(|&i| i != deviator)
            .map(|i| us[i])
            .min()
            .expect("n >= 2");
        rows.push(VoluntaryRow {
            behavior: behavior.label(),
            completed: run.is_completed(),
            min_compliant_utility,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn instance(n: usize, m: usize, w_max: u64, seed: u64) -> ExecutionTimes {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        dmw_mechanism::generators::uniform(n, m, 1..=w_max, &mut rng).unwrap()
    }

    #[test]
    fn deviations_never_beat_the_suggested_strategy() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let config = DmwConfig::generate(5, 1, &mut rng).unwrap();
        let truth = instance(5, 2, config.encoding().w_max(), 32);
        let rows = faithfulness_table(&config, &truth, 1, &mut rng).unwrap();
        assert_eq!(rows.len(), Behavior::catalogue(5, 1).len());
        for row in &rows {
            assert!(
                row.faithful(),
                "{} beat the suggested strategy: {} > {}",
                row.behavior,
                row.deviating_utility,
                row.suggested_utility
            );
        }
    }

    #[test]
    fn compliant_agents_never_lose() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        let config = DmwConfig::generate(5, 1, &mut rng).unwrap();
        let truth = instance(5, 2, config.encoding().w_max(), 42);
        let rows = voluntary_participation_table(&config, &truth, 2, &mut rng).unwrap();
        for row in &rows {
            assert!(
                row.min_compliant_utility >= 0,
                "{}: compliant agent lost {}",
                row.behavior,
                row.min_compliant_utility
            );
        }
    }

    #[test]
    fn tampering_deviations_abort_and_silent_ones_complete() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(51);
        let config = DmwConfig::generate(6, 2, &mut rng).unwrap();
        let truth = instance(6, 1, config.encoding().w_max(), 52);
        let rows = faithfulness_table(&config, &truth, 0, &mut rng).unwrap();
        let by_label = |l: &str| rows.iter().find(|r| r.behavior == l).unwrap();
        // Content tampering is detected and aborts the run.
        assert!(!by_label("tampered-commitments").completed);
        assert!(!by_label("corrupt-share").completed);
        assert!(!by_label("wrong-lambda").completed);
        // Pure silence is tolerated (c = 2) and the auction completes
        // without the deviator.
        assert!(by_label("silent").completed);
        // An inflated claim is outvoted; the run completes.
        assert!(by_label("inflated-payment-claim").completed);
    }
}
