//! The per-agent DMW state machine.
//!
//! One [`DmwAgent`] executes the four protocol phases for *all* `m` task
//! auctions in lockstep (the auctions are "parallel and independent",
//! Section 2.2). Protocol progress is a typed state machine — see
//! [`crate::phases`] for the phase catalogue, transition table and the
//! per-phase protocol logic. The scheduler [`DmwAgent::poll`]s each agent
//! once per tick: every poll files the arrived messages through the
//! shared ingress path, and the current phase *acts* (verifies, resolves,
//! publishes) as soon as its expected messages are complete — or when the
//! agent's patience budget expires, whichever comes first. Under the
//! lockstep transport with the default patience of one tick, acts land on
//! exactly the classic six-round schedule.
//!
//! **Detection semantics** (Theorems 4 and 8):
//!
//! * *Tampered content* — shares failing equations (7)–(9), disagreeing
//!   participation masks, or published values failing their public checks —
//!   triggers a broadcast `Abort` that terminates the run and zeroes
//!   everyone's utility.
//! * *Silence* — an agent that stops sending — marks the agent faulty; the
//!   protocol proceeds on the surviving share points while at most `c`
//!   agents are faulty in total, and aborts with `TooManyFaults` /
//!   `Unresolvable` beyond that (the computability threshold the paper
//!   offers for Open Problem 11).
//!
//! **Rotation verification.** Verifying equation (11) for *every* publisher
//! would cost each agent `Θ(n³ log p)` per task, exceeding the paper's
//! `Θ(mn² log p)` bound (Table 1). Instead, each published value is
//! checked by its `c + 1` cyclically-next live agents: with at most `c`
//! faulty agents at least one designated verifier is honest, so every
//! tampered value is still detected and aborted — at
//! `Θ((c + 1)·n² log p) = Θ(n² log p)` per agent per task for constant
//! `c`, matching Table 1 (see DESIGN.md).

use crate::config::DmwConfig;
use crate::error::AbortReason;
use crate::messages::Body;
use crate::phases::{self, Phase};
use crate::strategy::{Behavior, VerificationPolicy};
use dmw_crypto::polynomials::{BidPolynomials, ShareBundle};
use dmw_crypto::resolution::LambdaPsi;
use dmw_crypto::Commitments;
use dmw_obs::{Key, MetricsSink, MetricsSnapshot};
use dmw_simnet::{Delivered, Recipient};
use rand::rngs::StdRng;
use rand::SeedableRng;

// dmw-lint: allow-file(L1-index): every agent/task index in this module is
// validated at construction (`with_policy` asserts `me < n`, bids are range
// checked) or at message admission (`admissible` rejects out-of-range
// senders), and all per-agent vectors are allocated with length `n` up
// front; per-site `.get()` plumbing would bury the protocol equations.

/// The funnel for state-machine invariants: a value the phase structure
/// guarantees to be present (e.g. a bundle from an agent marked alive).
/// Every call site states which invariant it relies on, and the single
/// panic below is the module's only deliberate panic path.
pub(crate) trait Invariant<T> {
    fn invariant(self, what: &'static str) -> T;
}

impl<T> Invariant<T> for Option<T> {
    fn invariant(self, what: &'static str) -> T {
        match self {
            Some(v) => v,
            // dmw-lint: allow(L1): the module's one audited invariant funnel
            None => panic!("protocol invariant violated: {what}"),
        }
    }
}

impl<T, E> Invariant<T> for Result<T, E> {
    fn invariant(self, what: &'static str) -> T {
        self.ok().invariant(what)
    }
}

/// Lifecycle of an agent within one protocol run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AgentStatus {
    /// Executing the protocol.
    Running,
    /// Terminated after detecting (or being notified of) a violation.
    Aborted(AbortReason),
    /// Completed Phase IV; the final claim is available.
    Done,
}

/// Everything an agent accumulates about one task auction.
#[derive(Debug, Clone)]
pub(crate) struct TaskState {
    /// My polynomial quadruple (None for behaviors that never bid).
    pub(crate) polys: Option<BidPolynomials>,
    /// Commitments received per sender (self included).
    pub(crate) commitments: Vec<Option<Commitments>>,
    /// Share bundles received per sender (self included).
    pub(crate) bundles: Vec<Option<ShareBundle>>,
    /// Published `(Λ, Ψ)` pairs per agent.
    pub(crate) pairs: Vec<Option<LambdaPsi>>,
    /// Participation masks published alongside `Λ/Ψ`, per publisher —
    /// compared against my own `alive` when the resolution phase acts.
    pub(crate) masks: Vec<Option<Vec<bool>>>,
    /// Resolved first price.
    pub(crate) first_price: Option<u64>,
    /// The designated discloser set, fixed when resolution acts (the
    /// first `winner_points + c` responsive agents).
    pub(crate) disclosers: Vec<usize>,
    /// `true` when live share points alone cannot reach the `y* + c + 1`
    /// equation (14) needs and identification must consult winner claims.
    pub(crate) needs_fallback: bool,
    /// Disclosed `f`-columns per discloser.
    pub(crate) disclosures: Vec<Option<Vec<u64>>>,
    /// Winner-claim supplements per claimant: `(agent, f, h)` evaluations
    /// at non-live pseudonyms (the pre-bidding-crash fallback).
    pub(crate) claims: Vec<Option<Vec<(usize, u64, u64)>>>,
    /// Identified winner.
    pub(crate) winner: Option<usize>,
    /// Published excluded pairs per agent.
    pub(crate) excluded: Vec<Option<LambdaPsi>>,
    /// Resolved second price.
    pub(crate) second_price: Option<u64>,
}

impl TaskState {
    fn new(n: usize) -> Self {
        TaskState {
            polys: None,
            commitments: vec![None; n],
            bundles: vec![None; n],
            pairs: vec![None; n],
            masks: vec![None; n],
            first_price: None,
            disclosers: Vec::new(),
            needs_fallback: false,
            disclosures: vec![None; n],
            claims: vec![None; n],
            winner: None,
            excluded: vec![None; n],
            second_price: None,
        }
    }
}

/// One protocol participant.
#[derive(Debug)]
pub struct DmwAgent {
    pub(crate) config: DmwConfig,
    pub(crate) me: usize,
    pub(crate) behavior: Behavior,
    pub(crate) policy: VerificationPolicy,
    pub(crate) bids: Vec<u64>,
    pub(crate) rng: StdRng,
    pub(crate) status: AgentStatus,
    pub(crate) tasks: Vec<TaskState>,
    /// `alive[ℓ]`: agent `ℓ` completed the bidding phase toward me.
    pub(crate) alive: Vec<bool>,
    /// `faulty[ℓ]`: fell silent at a later stage. `faulty ⊆ alive`.
    pub(crate) faulty: Vec<bool>,
    /// My computed payment claim (bid units), present once Done.
    pub(crate) claim: Option<Vec<u64>>,
    /// Threads the Phase III.1 share-verification batch fans over
    /// (`1` = sequential, the default).
    pub(crate) verify_width: usize,
    /// Current phase of the typed state machine.
    pub(crate) phase: Phase,
    /// First tick whose poll counts toward the current phase's dwell
    /// and patience accounting: `0` at construction, `act_tick + 1`
    /// after each act. Keeping the *entry tick* instead of a per-poll
    /// counter is what lets the event-driven scheduler skip idle ticks
    /// without disturbing patience arithmetic — a poll at tick `now`
    /// has waited `now + 1 − phase_entered` ticks whether or not the
    /// ticks in between were ever polled (see `docs/scheduler.md`).
    pub(crate) phase_entered: u64,
    /// Clock for the tick-free [`DmwAgent::poll`] convenience wrapper;
    /// advanced past `now` by every [`DmwAgent::poll_at`].
    auto_now: u64,
    /// Ticks a phase may wait for message completeness before acting on
    /// whatever arrived. `1` (the default) acts at the first poll after
    /// entering a phase — the classic lockstep schedule.
    pub(crate) patience: u64,
    /// Label of the phase that most recently acted (trace annotation).
    pub(crate) acted_phase: &'static str,
    /// Per-agent protocol metrics: phase dwell ticks, patience
    /// expirations, share verifications, abort detection/propagation.
    /// Purely logical-tick-driven, so snapshots are bit-replayable.
    pub(crate) metrics: MetricsSnapshot,
}

impl DmwAgent {
    /// Creates agent `me` with its per-task `bids` (values in `W`) and a
    /// deterministic RNG derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of range or any bid is outside `W` — the
    /// runner validates both before construction.
    pub fn new(
        config: DmwConfig,
        me: usize,
        bids: Vec<u64>,
        behavior: Behavior,
        seed: u64,
    ) -> Self {
        Self::with_policy(
            config,
            me,
            bids,
            behavior,
            VerificationPolicy::Rotation,
            seed,
        )
    }

    /// Like [`DmwAgent::new`] with an explicit verification policy.
    ///
    /// # Panics
    ///
    /// Same conditions as [`DmwAgent::new`].
    pub fn with_policy(
        config: DmwConfig,
        me: usize,
        bids: Vec<u64>,
        behavior: Behavior,
        policy: VerificationPolicy,
        seed: u64,
    ) -> Self {
        let n = config.agents();
        assert!(me < n, "agent index out of range");
        for &b in &bids {
            assert!(config.encoding().contains_bid(b), "bid {b} outside W");
        }
        let m = bids.len();
        DmwAgent {
            config,
            me,
            behavior,
            policy,
            bids,
            rng: StdRng::seed_from_u64(crate::config::agent_seed(seed, me)),
            status: AgentStatus::Running,
            tasks: (0..m).map(|_| TaskState::new(n)).collect(),
            alive: vec![false; n],
            faulty: vec![false; n],
            claim: None,
            verify_width: 1,
            phase: Phase::Bidding,
            phase_entered: 0,
            auto_now: 0,
            patience: 1,
            acted_phase: Phase::Bidding.label(),
            metrics: MetricsSnapshot::default(),
        }
    }

    /// Sets how many threads the Phase III.1 share-verification batch
    /// fans over. Width never changes what is detected — see
    /// [`dmw_crypto::commitments::verify_shares_batch`] — only how fast;
    /// `1` (the default) keeps verification on the agent's own thread.
    #[must_use]
    pub fn with_verify_width(mut self, width: usize) -> Self {
        self.verify_width = width.max(1);
        self
    }

    /// Sets how many polls a phase may wait for message completeness
    /// before acting on whatever has arrived (clamped to at least `1`).
    /// The default of `1` acts at the first poll after entering a phase —
    /// the classic lockstep schedule; delayed transports need enough
    /// patience to cover their worst-case latency.
    #[must_use]
    pub fn with_patience(mut self, patience: u64) -> Self {
        self.patience = patience.max(1);
        self
    }

    /// Current lifecycle status.
    pub fn status(&self) -> &AgentStatus {
        &self.status
    }

    /// Current phase of the typed state machine.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Label of the phase that most recently acted — the trace annotation
    /// for the messages the last [`DmwAgent::poll`] emitted.
    pub fn acted_phase(&self) -> &'static str {
        self.acted_phase
    }

    /// `true` once the agent can make no further protocol progress.
    pub fn is_terminal(&self) -> bool {
        !matches!(self.status, AgentStatus::Running)
    }

    /// The abort reason, if aborted.
    pub fn abort_reason(&self) -> Option<AbortReason> {
        match &self.status {
            AgentStatus::Aborted(r) => Some(*r),
            _ => None,
        }
    }

    /// The winner this agent computed for `task` (once identified).
    pub fn winner_of(&self, task: usize) -> Option<usize> {
        self.tasks.get(task).and_then(|t| t.winner)
    }

    /// The first price this agent resolved for `task`.
    pub fn first_price_of(&self, task: usize) -> Option<u64> {
        self.tasks.get(task).and_then(|t| t.first_price)
    }

    /// The second price this agent resolved for `task`.
    pub fn second_price_of(&self, task: usize) -> Option<u64> {
        self.tasks.get(task).and_then(|t| t.second_price)
    }

    /// The payment claim this agent submitted (present once Done).
    pub fn claim(&self) -> Option<&[u64]> {
        self.claim.as_deref()
    }

    /// The behavior this agent executes.
    pub fn behavior(&self) -> Behavior {
        self.behavior
    }

    /// The per-agent protocol metrics accumulated so far: per-phase
    /// `phase_dwell_ticks`, `patience_expired`, `shares_verified`,
    /// `abort_detected` and `abort_propagated`.
    pub fn metrics(&self) -> &MetricsSnapshot {
        &self.metrics
    }

    /// My index as a metric label.
    pub(crate) fn metric_agent(&self) -> u32 {
        self.me as u32
    }

    pub(crate) fn n(&self) -> usize {
        self.config.agents()
    }

    pub(crate) fn m(&self) -> usize {
        self.tasks.len()
    }

    pub(crate) fn abort(&mut self, reason: AbortReason, out: &mut Vec<(Recipient, Body)>) {
        self.status = AgentStatus::Aborted(reason);
        let key = Key::named("abort_detected")
            .phase(self.phase.label())
            .agent(self.metric_agent());
        self.metrics.incr(key, 1);
        out.push((Recipient::Broadcast, Body::Abort { reason }));
    }

    /// Total faulty participants observed so far (silent in bidding or
    /// marked later).
    pub(crate) fn fault_count(&self) -> usize {
        (0..self.n())
            .filter(|&l| !self.alive[l] || self.faulty[l])
            .count()
    }

    /// Indices of agents alive and not marked faulty, ascending — the
    /// "responsive" set whose points drive resolution.
    pub(crate) fn live_indices(&self) -> Vec<usize> {
        (0..self.n())
            .filter(|&l| self.alive[l] && !self.faulty[l])
            .collect()
    }

    /// Indices of agents that completed bidding (the polynomials summed in
    /// `E` and `H`), ascending.
    pub(crate) fn alive_indices(&self) -> Vec<usize> {
        (0..self.n()).filter(|&l| self.alive[l]).collect()
    }

    /// Am I one of `publisher`'s `c + 1` designated rotation verifiers?
    /// Designated verifiers are the cyclically-next live agents after the
    /// publisher, so at most `c` faults leave at least one honest verifier.
    pub(crate) fn is_designated_verifier(&self, publisher: usize) -> bool {
        if self.policy == VerificationPolicy::Full {
            return true;
        }
        let live = self.live_indices();
        let Some(pos) = live.iter().position(|&l| l == publisher) else {
            return false;
        };
        let verifiers = (self.config.encoding().faults() + 1).min(live.len().max(1) - 1);
        live.iter()
            .cycle()
            .skip(pos + 1)
            .take(verifiers)
            .any(|&l| l == self.me)
    }

    /// Shared ingress: unpacks coalesced `Body::Batch` containers, honours
    /// peer aborts (at any phase), and files every protocol message into
    /// per-task state. Returns `false` when the agent is — or just became
    /// — non-`Running` and therefore must not act.
    fn ingest(&mut self, inbox: Vec<Delivered<Body>>) -> bool {
        let inbox: Vec<Delivered<Body>> = inbox
            .into_iter()
            .flat_map(|d| match d.payload {
                Body::Batch(bodies) => bodies
                    .into_iter()
                    .map(|payload| Delivered {
                        from: d.from,
                        broadcast: d.broadcast,
                        payload,
                    })
                    .collect::<Vec<_>>(),
                _ => vec![d],
            })
            .collect();
        if self.status == AgentStatus::Running {
            for msg in &inbox {
                if let Body::Abort { .. } = msg.payload {
                    self.status =
                        AgentStatus::Aborted(AbortReason::PeerAborted { peer: msg.from.0 });
                    let key = Key::named("abort_propagated").agent(self.metric_agent());
                    self.metrics.incr(key, 1);
                    return false;
                }
            }
        }
        if self.status != AgentStatus::Running {
            return false;
        }
        for msg in inbox {
            self.file(msg);
        }
        true
    }

    /// Files one protocol message into per-task state, whatever the
    /// current phase — completeness predicates, not arrival timing,
    /// decide when state is consumed. Admissibility is enforced at *read*
    /// time (resolution reads only responsive publishers, identification
    /// only live disclosers), which is equivalent to the old
    /// arrival-time filter because the responsive set is fixed before
    /// the reads happen.
    fn file(&mut self, msg: Delivered<Body>) {
        let from = msg.from.0;
        match msg.payload {
            Body::Shares { task, bundle } => {
                self.tasks[task].bundles[from] = Some(bundle);
            }
            Body::Commit { task, commitments } => {
                self.tasks[task].commitments[from] = Some(commitments);
            }
            Body::Lambda {
                task,
                pair,
                included,
            } => {
                self.tasks[task].masks[from] = Some(included);
                if from != self.me {
                    self.tasks[task].pairs[from] = Some(pair);
                }
            }
            Body::Disclose { task, f_values } => {
                self.tasks[task].disclosures[from] = Some(f_values);
            }
            Body::WinnerClaim { task, points } => {
                self.tasks[task].claims[from] = Some(points);
            }
            Body::Excluded { task, pair } => {
                if from != self.me {
                    self.tasks[task].excluded[from] = Some(pair);
                }
            }
            // Reliable-delivery control traffic is consumed by the
            // runner's endpoint layer before the agent is polled; these
            // arms exist so the dispatch stays wildcard-free (L3).
            Body::PaymentClaim { .. }
            | Body::Abort { .. }
            | Body::Batch(_)
            | Body::Sealed { .. }
            | Body::Ack { .. }
            | Body::Nack { .. }
            | Body::Repair { .. }
            | Body::SuspectDead { .. } => {}
        }
    }

    /// Advances one scheduler tick without an explicit tick number: each
    /// call is one tick after the previous one (starting at tick `0`).
    /// Exactly [`DmwAgent::poll_at`] on the agent's own clock — the
    /// convenience form for drivers that poll every tick.
    pub fn poll(&mut self, inbox: Vec<Delivered<Body>>) -> Vec<(Recipient, Body)> {
        let now = self.auto_now;
        self.poll_at(now, inbox)
    }

    /// Runs the agent's scheduler activation for tick `now`. Consumes
    /// the tick's inbox through the shared ingress path; the current
    /// phase acts when its expected messages are complete
    /// (`phases::ready`) or the patience budget expires. Returns the
    /// messages to transmit; a non-`Running` agent emits nothing.
    ///
    /// Dwell and patience accounting are functions of `now` and the
    /// phase's entry tick, not of how often the agent was polled, so an
    /// event-driven scheduler may skip ticks on which
    /// [`DmwAgent::next_wake`] promises the agent would not act: the
    /// activation at the next event tick behaves bit-identically to a
    /// poll-every-tick schedule. Ticks must be non-decreasing across
    /// calls, with at most one call per tick.
    pub fn poll_at(&mut self, now: u64, inbox: Vec<Delivered<Body>>) -> Vec<(Recipient, Body)> {
        self.auto_now = now + 1;
        let mut out = Vec::new();
        if !self.ingest(inbox) {
            return out;
        }
        if self.phase == Phase::Claimed {
            return out;
        }
        // How long the current phase has waited, counting this tick —
        // identical to a counter incremented once per tick by a
        // poll-every-tick scheduler.
        let waited = now + 1 - self.phase_entered;
        let ready = phases::ready(self);
        if ready || waited >= self.patience {
            self.acted_phase = self.phase.label();
            let dwell = Key::named("phase_dwell_ticks")
                .phase(self.acted_phase)
                .agent(self.metric_agent());
            self.metrics.incr(dwell, waited);
            if !ready {
                // Acting because the budget ran out, not because the
                // phase's expected messages were complete.
                let expired = Key::named("patience_expired")
                    .phase(self.acted_phase)
                    .agent(self.metric_agent());
                self.metrics.incr(expired, 1);
            }
            phases::act(self, &mut out);
            self.phase = self.phase.next();
            self.phase_entered = now + 1;
        }
        out
    }

    /// The next tick at which polling this agent could do anything a
    /// skipped empty poll would not: the tick its patience budget
    /// expires, or the very next tick when the current phase's inputs
    /// are already complete (it would act immediately — the cascade
    /// after an act whose successor phase is already satisfied).
    /// `None` for agents that can make no further local progress
    /// (terminal, or resting in `Claimed`); deliveries can still wake
    /// them — the scheduler unions this with the transport's and the
    /// reliable endpoints' own event horizons.
    ///
    /// Between activations an agent's state only changes through
    /// [`DmwAgent::poll_at`], so a tick `t` with no delivery and
    /// `t < next_wake()` is guaranteed to be an empty poll — the
    /// skipping contract `tests/tests/event_parity.rs` pins.
    pub fn next_wake(&self) -> Option<u64> {
        if self.is_terminal() || self.phase == Phase::Claimed {
            return None;
        }
        if phases::ready(self) {
            Some(self.phase_entered)
        } else {
            Some(self.phase_entered + self.patience - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmw_simnet::NodeId;
    use rand::SeedableRng;

    fn config(n: usize, c: usize, seed: u64) -> DmwConfig {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        DmwConfig::generate(n, c, &mut rng).unwrap()
    }

    #[test]
    fn agent_starts_running_with_validated_bids() {
        let cfg = config(5, 1, 1);
        let agent = DmwAgent::new(cfg, 0, vec![1, 2], Behavior::Suggested, 42);
        assert_eq!(*agent.status(), AgentStatus::Running);
        assert_eq!(agent.phase(), Phase::Bidding);
        assert!(agent.claim().is_none());
        assert!(agent.abort_reason().is_none());
    }

    #[test]
    #[should_panic(expected = "outside W")]
    fn out_of_range_bid_panics() {
        let cfg = config(5, 1, 2);
        // w_max = 3 for n=5, c=1.
        let _ = DmwAgent::new(cfg, 0, vec![4], Behavior::Suggested, 42);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_index_panics() {
        let cfg = config(4, 0, 3);
        let _ = DmwAgent::new(cfg, 9, vec![1], Behavior::Suggested, 42);
    }

    #[test]
    fn silent_agent_emits_nothing_but_walks_the_phases() {
        let cfg = config(5, 1, 4);
        let mut agent = DmwAgent::new(cfg, 2, vec![1], Behavior::Silent, 42);
        for _ in 0..6 {
            assert!(agent.poll(vec![]).is_empty());
        }
        assert_eq!(agent.phase(), Phase::Claimed);
        assert_eq!(
            *agent.status(),
            AgentStatus::Running,
            "silence is not termination"
        );
    }

    #[test]
    fn bidding_phase_emits_shares_and_commitments() {
        let cfg = config(5, 1, 5);
        let mut agent = DmwAgent::new(cfg, 0, vec![1, 3], Behavior::Suggested, 42);
        let out = agent.poll(vec![]);
        assert_eq!(agent.acted_phase(), "bidding");
        assert_eq!(agent.phase(), Phase::Commitments);
        let shares = out
            .iter()
            .filter(|(_, b)| matches!(b, Body::Shares { .. }))
            .count();
        let commits = out
            .iter()
            .filter(|(r, b)| matches!(b, Body::Commit { .. }) && matches!(r, Recipient::Broadcast))
            .count();
        // m = 2 tasks: 4 unicast share bundles each, one commit broadcast
        // each.
        assert_eq!(shares, 8);
        assert_eq!(commits, 2);
    }

    #[test]
    fn peer_abort_is_honoured_at_any_phase() {
        let cfg = config(5, 1, 6);
        let mut agent = DmwAgent::new(cfg, 0, vec![1], Behavior::Suggested, 42);
        let _ = agent.poll(vec![]);
        let abort = Delivered {
            from: NodeId(3),
            broadcast: true,
            payload: Body::Abort {
                reason: AbortReason::Unresolvable,
            },
        };
        let out = agent.poll(vec![abort]);
        assert!(out.is_empty());
        assert!(agent.is_terminal());
        assert_eq!(
            agent.abort_reason(),
            Some(AbortReason::PeerAborted { peer: 3 })
        );
    }

    #[test]
    fn missing_everyone_aborts_with_too_many_faults() {
        // An agent that hears from nobody while bidding closes sees n - 1
        // faults, far beyond any tolerated c.
        let cfg = config(5, 1, 7);
        let mut agent = DmwAgent::new(cfg, 0, vec![1], Behavior::Suggested, 42);
        let _ = agent.poll(vec![]);
        let out = agent.poll(vec![]);
        assert!(matches!(
            agent.abort_reason(),
            Some(AbortReason::TooManyFaults {
                observed: 4,
                tolerated: 1
            })
        ));
        // The abort is broadcast so peers terminate too.
        assert!(out
            .iter()
            .any(|(r, b)| matches!(b, Body::Abort { .. }) && matches!(r, Recipient::Broadcast)));
    }

    #[test]
    fn patience_defers_the_commitments_act() {
        // With patience 3 and an empty inbox, the commitments phase waits
        // two extra polls for stragglers before concluding TooManyFaults.
        let cfg = config(5, 1, 8);
        let mut agent = DmwAgent::new(cfg, 0, vec![1], Behavior::Suggested, 42).with_patience(3);
        let _ = agent.poll(vec![]);
        assert_eq!(agent.phase(), Phase::Commitments);
        assert!(agent.poll(vec![]).is_empty());
        assert!(agent.poll(vec![]).is_empty());
        assert_eq!(agent.phase(), Phase::Commitments, "still waiting");
        let out = agent.poll(vec![]);
        assert!(
            matches!(
                agent.abort_reason(),
                Some(AbortReason::TooManyFaults { .. })
            ),
            "patience exhausted, acted on the empty view"
        );
        assert!(!out.is_empty());
    }
}
