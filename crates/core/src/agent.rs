//! The per-agent DMW state machine.
//!
//! One [`DmwAgent`] executes the four protocol phases for *all* `m` task
//! auctions in lockstep (the auctions are "parallel and independent",
//! Section 2.2). The runner advances agents in synchronous rounds:
//!
//! | round | phase | sends |
//! |-------|-------|-------|
//! | 0 | II *Bidding* | share bundles (unicast), commitments (broadcast) |
//! | 1 | III.1–III.2 | verify shares (eqs (7)–(9)); publish `Λ/Ψ` + participation mask |
//! | 2 | III.2–III.3 | verify `Λ/Ψ` (eq (11)); resolve first price (eq (12)); disclose `f`-shares |
//! | 3 | III.3–III.4 | verify disclosures (eq (13)); identify winner (eq (14)); publish excluded `Λ'/Ψ'` (eq (15)) |
//! | 4 | III.4–IV | verify excluded pairs; resolve second price; submit payment claim |
//!
//! **Detection semantics** (Theorems 4 and 8):
//!
//! * *Tampered content* — shares failing equations (7)–(9), disagreeing
//!   participation masks, or published values failing their public checks —
//!   triggers a broadcast `Abort` that terminates the run and zeroes
//!   everyone's utility.
//! * *Silence* — an agent that stops sending — marks the agent faulty; the
//!   protocol proceeds on the surviving share points while at most `c`
//!   agents are faulty in total, and aborts with `TooManyFaults` /
//!   `Unresolvable` beyond that (the computability threshold the paper
//!   offers for Open Problem 11).
//!
//! **Rotation verification.** Verifying equation (11) for *every* publisher
//! would cost each agent `Θ(n³ log p)` per task, exceeding the paper's
//! `Θ(mn² log p)` bound (Table 1). Instead, each published value is
//! checked by its `c + 1` cyclically-next live agents: with at most `c`
//! faulty agents at least one designated verifier is honest, so every
//! tampered value is still detected and aborted — at
//! `Θ((c + 1)·n² log p) = Θ(n² log p)` per agent per task for constant
//! `c`, matching Table 1 (see DESIGN.md).

use crate::config::DmwConfig;
use crate::error::AbortReason;
use crate::messages::Body;
use crate::strategy::{Behavior, VerificationPolicy};
use dmw_crypto::commitments::verify_shares_batch;
use dmw_crypto::polynomials::{BidPolynomials, ShareBundle};
use dmw_crypto::resolution::{
    compute_lambda_psi, exclude_winner, identify_winner, resolve_min_bid, verify_claimed_f_point,
    verify_f_disclosure, verify_lambda_psi, LambdaPsi,
};
use dmw_crypto::Commitments;
use dmw_simnet::{Delivered, NodeId, Recipient};
use rand::rngs::StdRng;
use rand::SeedableRng;

// dmw-lint: allow-file(L1-index): every agent/task index in this module is
// validated at construction (`with_policy` asserts `me < n`, bids are range
// checked) or at message admission (`admissible` rejects out-of-range
// senders), and all per-agent vectors are allocated with length `n` up
// front; per-site `.get()` plumbing would bury the protocol equations.

/// The funnel for state-machine invariants: a value the round structure
/// guarantees to be present (e.g. a bundle from an agent marked alive).
/// Every call site states which invariant it relies on, and the single
/// panic below is the module's only deliberate panic path.
trait Invariant<T> {
    fn invariant(self, what: &'static str) -> T;
}

impl<T> Invariant<T> for Option<T> {
    fn invariant(self, what: &'static str) -> T {
        match self {
            Some(v) => v,
            // dmw-lint: allow(L1): the module's one audited invariant funnel
            None => panic!("protocol invariant violated: {what}"),
        }
    }
}

impl<T, E> Invariant<T> for Result<T, E> {
    fn invariant(self, what: &'static str) -> T {
        self.ok().invariant(what)
    }
}

/// Lifecycle of an agent within one protocol run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AgentStatus {
    /// Executing the protocol.
    Running,
    /// Terminated after detecting (or being notified of) a violation.
    Aborted(AbortReason),
    /// Completed Phase IV; the final claim is available.
    Done,
}

/// Everything an agent accumulates about one task auction.
#[derive(Debug, Clone)]
struct TaskState {
    /// My polynomial quadruple (None for behaviors that never bid).
    polys: Option<BidPolynomials>,
    /// Commitments received per sender (self included).
    commitments: Vec<Option<Commitments>>,
    /// Share bundles received per sender (self included).
    bundles: Vec<Option<ShareBundle>>,
    /// Published `(Λ, Ψ)` pairs per agent.
    pairs: Vec<Option<LambdaPsi>>,
    /// Resolved first price.
    first_price: Option<u64>,
    /// Disclosed `f`-columns per discloser.
    disclosures: Vec<Option<Vec<u64>>>,
    /// Winner-claim supplements per claimant: `(agent, f, h)` evaluations
    /// at non-live pseudonyms (the pre-bidding-crash fallback).
    claims: Vec<Option<Vec<(usize, u64, u64)>>>,
    /// Identified winner.
    winner: Option<usize>,
    /// Published excluded pairs per agent.
    excluded: Vec<Option<LambdaPsi>>,
    /// Resolved second price.
    second_price: Option<u64>,
}

impl TaskState {
    fn new(n: usize) -> Self {
        TaskState {
            polys: None,
            commitments: vec![None; n],
            bundles: vec![None; n],
            pairs: vec![None; n],
            first_price: None,
            disclosures: vec![None; n],
            claims: vec![None; n],
            winner: None,
            excluded: vec![None; n],
            second_price: None,
        }
    }
}

/// One protocol participant.
#[derive(Debug)]
pub struct DmwAgent {
    config: DmwConfig,
    me: usize,
    behavior: Behavior,
    policy: VerificationPolicy,
    bids: Vec<u64>,
    rng: StdRng,
    status: AgentStatus,
    tasks: Vec<TaskState>,
    /// `alive[ℓ]`: agent `ℓ` completed the bidding phase toward me.
    alive: Vec<bool>,
    /// `faulty[ℓ]`: fell silent at a later stage. `faulty ⊆ alive`.
    faulty: Vec<bool>,
    /// My computed payment claim (bid units), present once Done.
    claim: Option<Vec<u64>>,
    /// Threads the Phase III.1 share-verification batch fans over
    /// (`1` = sequential, the default).
    verify_width: usize,
}

impl DmwAgent {
    /// Creates agent `me` with its per-task `bids` (values in `W`) and a
    /// deterministic RNG derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of range or any bid is outside `W` — the
    /// runner validates both before construction.
    pub fn new(
        config: DmwConfig,
        me: usize,
        bids: Vec<u64>,
        behavior: Behavior,
        seed: u64,
    ) -> Self {
        Self::with_policy(
            config,
            me,
            bids,
            behavior,
            VerificationPolicy::Rotation,
            seed,
        )
    }

    /// Like [`DmwAgent::new`] with an explicit verification policy.
    ///
    /// # Panics
    ///
    /// Same conditions as [`DmwAgent::new`].
    pub fn with_policy(
        config: DmwConfig,
        me: usize,
        bids: Vec<u64>,
        behavior: Behavior,
        policy: VerificationPolicy,
        seed: u64,
    ) -> Self {
        let n = config.agents();
        assert!(me < n, "agent index out of range");
        for &b in &bids {
            assert!(config.encoding().contains_bid(b), "bid {b} outside W");
        }
        let m = bids.len();
        DmwAgent {
            config,
            me,
            behavior,
            policy,
            bids,
            rng: StdRng::seed_from_u64(crate::config::agent_seed(seed, me)),
            status: AgentStatus::Running,
            tasks: (0..m).map(|_| TaskState::new(n)).collect(),
            alive: vec![false; n],
            faulty: vec![false; n],
            claim: None,
            verify_width: 1,
        }
    }

    /// Sets how many threads the Phase III.1 share-verification batch
    /// fans over. Width never changes what is detected — see
    /// [`dmw_crypto::commitments::verify_shares_batch`] — only how fast;
    /// `1` (the default) keeps verification on the agent's own thread.
    #[must_use]
    pub fn with_verify_width(mut self, width: usize) -> Self {
        self.verify_width = width.max(1);
        self
    }

    /// Current lifecycle status.
    pub fn status(&self) -> &AgentStatus {
        &self.status
    }

    /// The abort reason, if aborted.
    pub fn abort_reason(&self) -> Option<AbortReason> {
        match &self.status {
            AgentStatus::Aborted(r) => Some(*r),
            _ => None,
        }
    }

    /// The winner this agent computed for `task` (once identified).
    pub fn winner_of(&self, task: usize) -> Option<usize> {
        self.tasks.get(task).and_then(|t| t.winner)
    }

    /// The first price this agent resolved for `task`.
    pub fn first_price_of(&self, task: usize) -> Option<u64> {
        self.tasks.get(task).and_then(|t| t.first_price)
    }

    /// The second price this agent resolved for `task`.
    pub fn second_price_of(&self, task: usize) -> Option<u64> {
        self.tasks.get(task).and_then(|t| t.second_price)
    }

    /// The payment claim this agent submitted (present once Done).
    pub fn claim(&self) -> Option<&[u64]> {
        self.claim.as_deref()
    }

    /// The behavior this agent executes.
    pub fn behavior(&self) -> Behavior {
        self.behavior
    }

    fn n(&self) -> usize {
        self.config.agents()
    }

    fn m(&self) -> usize {
        self.tasks.len()
    }

    fn abort(&mut self, reason: AbortReason, out: &mut Vec<(Recipient, Body)>) {
        self.status = AgentStatus::Aborted(reason);
        out.push((Recipient::Broadcast, Body::Abort { reason }));
    }

    /// Total faulty participants observed so far (silent in bidding or
    /// marked later).
    fn fault_count(&self) -> usize {
        (0..self.n())
            .filter(|&l| !self.alive[l] || self.faulty[l])
            .count()
    }

    /// Indices of agents alive and not marked faulty, ascending — the
    /// "responsive" set whose points drive resolution.
    fn live_indices(&self) -> Vec<usize> {
        (0..self.n())
            .filter(|&l| self.alive[l] && !self.faulty[l])
            .collect()
    }

    /// Indices of agents that completed bidding (the polynomials summed in
    /// `E` and `H`), ascending.
    fn alive_indices(&self) -> Vec<usize> {
        (0..self.n()).filter(|&l| self.alive[l]).collect()
    }

    /// Am I one of `publisher`'s `c + 1` designated rotation verifiers?
    /// Designated verifiers are the cyclically-next live agents after the
    /// publisher, so at most `c` faults leave at least one honest verifier.
    fn is_designated_verifier(&self, publisher: usize) -> bool {
        if self.policy == VerificationPolicy::Full {
            return true;
        }
        let live = self.live_indices();
        let Some(pos) = live.iter().position(|&l| l == publisher) else {
            return false;
        };
        let verifiers = (self.config.encoding().faults() + 1).min(live.len().max(1) - 1);
        live.iter()
            .cycle()
            .skip(pos + 1)
            .take(verifiers)
            .any(|&l| l == self.me)
    }

    /// Advances one synchronous round. Consumes the round's inbox and
    /// returns the messages to transmit. A non-`Running` agent emits
    /// nothing.
    pub fn on_round(&mut self, round: u64, inbox: Vec<Delivered<Body>>) -> Vec<(Recipient, Body)> {
        // Unpack coalesced containers (produced by a batching runner)
        // into the individual protocol messages.
        let inbox: Vec<Delivered<Body>> = inbox
            .into_iter()
            .flat_map(|d| match d.payload {
                Body::Batch(bodies) => bodies
                    .into_iter()
                    .map(|payload| Delivered {
                        from: d.from,
                        broadcast: d.broadcast,
                        payload,
                    })
                    .collect::<Vec<_>>(),
                _ => vec![d],
            })
            .collect();
        let mut out = Vec::new();
        // Honour peer aborts first, at any stage.
        if self.status == AgentStatus::Running {
            for msg in &inbox {
                if let Body::Abort { .. } = msg.payload {
                    self.status =
                        AgentStatus::Aborted(AbortReason::PeerAborted { peer: msg.from.0 });
                    return out;
                }
            }
        }
        if self.status != AgentStatus::Running {
            return out;
        }
        match round {
            0 => self.round_bidding(&mut out),
            1 => self.round_verify_and_publish(inbox, &mut out),
            2 => self.round_resolve_first(inbox, &mut out),
            3 => self.round_identify_winner(inbox, &mut out),
            4 => self.round_second_price_and_claim(inbox, &mut out),
            _ => {}
        }
        out
    }

    /// Round 0 — Phase II *Bidding*: sample polynomials, distribute shares,
    /// publish commitments.
    fn round_bidding(&mut self, out: &mut Vec<(Recipient, Body)>) {
        if matches!(self.behavior, Behavior::Silent) {
            return;
        }
        let group = *self.config.group();
        let encoding = *self.config.encoding();
        let zq = group.zq();
        for task in 0..self.m() {
            let polys = BidPolynomials::generate(&group, &encoding, self.bids[task], &mut self.rng)
                .invariant("bids validated at construction");
            // Publish commitments (II.3); a tamperer keeps the honest copy
            // in its own state.
            let honest = Commitments::commit(&group, &encoding, &polys);
            let published = match self.behavior {
                Behavior::TamperedCommitments => honest.clone().with_tampered_q(&group, 0),
                _ => honest.clone(),
            };
            let my_bundle = polys.share_for(&zq, self.config.pseudonym(self.me));
            self.tasks[task].bundles[self.me] = Some(my_bundle);
            self.tasks[task].commitments[self.me] = Some(honest);
            out.push((
                Recipient::Broadcast,
                Body::Commit {
                    task,
                    commitments: published,
                },
            ));
            // Distribute shares (II.2).
            for peer in 0..self.n() {
                if peer == self.me {
                    continue;
                }
                match self.behavior {
                    Behavior::WithholdShares => continue,
                    Behavior::SelectiveShares { threshold } if peer >= threshold => continue,
                    _ => {}
                }
                let mut bundle = polys.share_for(&zq, self.config.pseudonym(peer));
                if matches!(self.behavior, Behavior::CorruptShareTo { victim } if victim == peer) {
                    bundle.e = zq.add(bundle.e, 1);
                }
                out.push((
                    Recipient::Unicast(NodeId(peer)),
                    Body::Shares { task, bundle },
                ));
            }
            self.tasks[task].polys = Some(polys);
        }
    }

    /// Round 1 — Phase III.1 + III.2 publication: verify received bundles
    /// against commitments, fix the participation mask, publish `Λ/Ψ`.
    fn round_verify_and_publish(
        &mut self,
        inbox: Vec<Delivered<Body>>,
        out: &mut Vec<(Recipient, Body)>,
    ) {
        if matches!(self.behavior, Behavior::Silent) {
            return;
        }
        // File the bidding-phase traffic.
        for msg in inbox {
            match msg.payload {
                Body::Shares { task, bundle } => {
                    self.tasks[task].bundles[msg.from.0] = Some(bundle);
                }
                Body::Commit { task, commitments } => {
                    self.tasks[task].commitments[msg.from.0] = Some(commitments);
                }
                _ => {}
            }
        }
        // An agent is alive iff its shares AND commitments arrived for
        // every task.
        for l in 0..self.n() {
            self.alive[l] = (0..self.m()).all(|t| {
                self.tasks[t].bundles[l].is_some() && self.tasks[t].commitments[l].is_some()
            });
        }
        let faults = self.fault_count();
        if faults > self.config.encoding().faults() {
            self.abort(
                AbortReason::TooManyFaults {
                    observed: faults,
                    tolerated: self.config.encoding().faults(),
                },
                out,
            );
            return;
        }
        // Verify every live sender's bundle (III.1, eqs (7)–(9)). The
        // (task, sender) checks are independent, so they are submitted as
        // one batch and fanned over `verify_width` threads; the batch
        // reports the first failure in the same row-major (task, sender)
        // order the sequential loop scanned, so detection is
        // width-invariant.
        let group = *self.config.group();
        let my_alpha = self.config.pseudonym(self.me);
        let bad_sender = {
            let mut items = Vec::new();
            let mut senders = Vec::new();
            for task in 0..self.m() {
                for l in 0..self.n() {
                    if !self.alive[l] || l == self.me {
                        continue;
                    }
                    let bundle = self.tasks[task].bundles[l].invariant("alive implies present");
                    let commitments = self.tasks[task].commitments[l]
                        .as_ref()
                        .invariant("alive implies present");
                    items.push((commitments, bundle));
                    senders.push(l);
                }
            }
            verify_shares_batch(&group, my_alpha, &items, self.verify_width)
                .err()
                .map(|failure| {
                    *senders
                        .get(failure.index)
                        .invariant("batch failure indexes a submitted item")
                })
        };
        if let Some(sender) = bad_sender {
            self.abort(AbortReason::InvalidShares { sender }, out);
            return;
        }
        if matches!(self.behavior, Behavior::SilentAfterBidding) {
            return;
        }
        // Publish lambda/psi over the live set (III.2, eq (10)).
        let included = self.alive.clone();
        let alive = self.alive_indices();
        for task in 0..self.m() {
            let e_shares: Vec<u64> = alive
                .iter()
                .map(|&l| self.tasks[task].bundles[l].invariant("alive").e)
                .collect();
            let h_shares: Vec<u64> = alive
                .iter()
                .map(|&l| self.tasks[task].bundles[l].invariant("alive").h)
                .collect();
            let honest = compute_lambda_psi(&group, &e_shares, &h_shares);
            self.tasks[task].pairs[self.me] = Some(honest);
            let mut pair = honest;
            if matches!(self.behavior, Behavior::WrongLambda) {
                pair.lambda = group.zp().mul(pair.lambda, group.z1());
            }
            out.push((
                Recipient::Broadcast,
                Body::Lambda {
                    task,
                    pair,
                    included: included.clone(),
                },
            ));
        }
    }

    /// Round 2 — Phase III.2 verification + first-price resolution +
    /// disclosure kick-off.
    fn round_resolve_first(
        &mut self,
        inbox: Vec<Delivered<Body>>,
        out: &mut Vec<(Recipient, Body)>,
    ) {
        if matches!(
            self.behavior,
            Behavior::Silent | Behavior::SilentAfterBidding
        ) {
            return;
        }
        for msg in inbox {
            if let Body::Lambda {
                task,
                pair,
                included,
            } = msg.payload
            {
                // A publisher whose participation mask disagrees with mine
                // is evidence of selective share delivery: hard abort.
                if included != self.alive {
                    self.abort(
                        AbortReason::InconsistentMask {
                            publisher: msg.from.0,
                        },
                        out,
                    );
                    return;
                }
                if msg.from.0 != self.me {
                    self.tasks[task].pairs[msg.from.0] = Some(pair);
                }
            }
        }
        let group = *self.config.group();
        let encoding = *self.config.encoding();
        // Silent publishers become faulty (tolerated up to c in total).
        for l in self.alive_indices() {
            if (0..self.m()).any(|t| self.tasks[t].pairs[l].is_none()) {
                self.faulty[l] = true;
            }
        }
        if self.fault_count() > encoding.faults() {
            self.abort(
                AbortReason::TooManyFaults {
                    observed: self.fault_count(),
                    tolerated: encoding.faults(),
                },
                out,
            );
            return;
        }
        // Rotation verification of eq (11): I check my designated
        // publishers; any honest verifier detecting tampering aborts the
        // whole run.
        let alive = self.alive_indices();
        for task in 0..self.m() {
            let commitments: Vec<Commitments> = alive
                .iter()
                .map(|&l| self.tasks[task].commitments[l].clone().invariant("alive"))
                .collect();
            for &l in &self.live_indices() {
                if l == self.me || !self.is_designated_verifier(l) {
                    continue;
                }
                let pair = self.tasks[task].pairs[l].invariant("live implies published");
                if verify_lambda_psi(
                    &group,
                    &commitments,
                    l,
                    self.config.pseudonym(l),
                    &pair,
                    None,
                )
                .is_err()
                {
                    self.abort(AbortReason::InvalidLambdaPsi { publisher: l }, out);
                    return;
                }
            }
        }
        // Resolve the first price per task from the responsive points
        // (eq (12)).
        let responsive = self.live_indices();
        let alphas: Vec<u64> = responsive
            .iter()
            .map(|&l| self.config.pseudonym(l))
            .collect();
        for task in 0..self.m() {
            let lambdas: Vec<u64> = responsive
                .iter()
                .map(|&l| self.tasks[task].pairs[l].invariant("responsive").lambda)
                .collect();
            match resolve_min_bid(&group, &encoding, &alphas, &lambdas) {
                Ok(price) => self.tasks[task].first_price = Some(price.bid),
                Err(_) => {
                    self.abort(AbortReason::Unresolvable, out);
                    return;
                }
            }
        }
        // Disclose my f-column if I am among the designated disclosers:
        // the first `winner_points + c` responsive agents (the `+ c`
        // spares keep identification alive when disclosers fall silent).
        for task in 0..self.m() {
            let first_price = self.tasks[task].first_price.invariant("resolved above");
            let needed = encoding.winner_points(first_price) + encoding.faults();
            let disclosers: Vec<usize> = responsive.iter().copied().take(needed).collect();
            if disclosers.contains(&self.me) {
                let mut f_values: Vec<u64> = (0..self.n())
                    .map(|l| self.tasks[task].bundles[l].map(|b| b.f).unwrap_or(0))
                    .collect();
                if matches!(self.behavior, Behavior::WrongDisclosure) {
                    f_values[self.me] = group.zq().add(f_values[self.me], 1);
                }
                self.tasks[task].disclosures[self.me] = Some(f_values.clone());
                out.push((Recipient::Broadcast, Body::Disclose { task, f_values }));
            }
        }
        // Identification fallback: crashes before bidding can leave fewer
        // live share points than eq (14) needs (`y* + c + 1`). An agent
        // whose own bid equals the first price supplements the missing
        // evaluations from its own polynomials; every verifier binds them
        // to its Phase II.3 commitments via eq (9) before use.
        for task in 0..self.m() {
            let first_price = self.tasks[task].first_price.invariant("resolved above");
            let live = self.live_indices();
            if live.len() >= encoding.winner_points(first_price) || self.bids[task] != first_price {
                continue;
            }
            let Some(polys) = &self.tasks[task].polys else {
                continue;
            };
            let zq = group.zq();
            let points: Vec<(usize, u64, u64)> = (0..self.n())
                .filter(|l| !live.contains(l))
                .map(|l| {
                    let alpha = self.config.pseudonym(l);
                    (l, polys.f().eval(&zq, alpha), polys.h().eval(&zq, alpha))
                })
                .collect();
            self.tasks[task].claims[self.me] = Some(points.clone());
            out.push((Recipient::Broadcast, Body::WinnerClaim { task, points }));
        }
    }

    /// Round 3 — Phase III.3: verify disclosures, identify the winner,
    /// publish the winner-excluded pair.
    fn round_identify_winner(
        &mut self,
        inbox: Vec<Delivered<Body>>,
        out: &mut Vec<(Recipient, Body)>,
    ) {
        if matches!(
            self.behavior,
            Behavior::Silent | Behavior::SilentAfterBidding
        ) {
            return;
        }
        for msg in inbox {
            match msg.payload {
                // Only responsive agents' disclosures and claims are
                // admissible.
                Body::Disclose { task, f_values }
                    if self.alive[msg.from.0] && !self.faulty[msg.from.0] =>
                {
                    self.tasks[task].disclosures[msg.from.0] = Some(f_values);
                }
                Body::WinnerClaim { task, points }
                    if self.alive[msg.from.0] && !self.faulty[msg.from.0] =>
                {
                    self.tasks[task].claims[msg.from.0] = Some(points);
                }
                _ => {}
            }
        }
        let group = *self.config.group();
        let encoding = *self.config.encoding();
        let alive = self.alive_indices();
        for task in 0..self.m() {
            let commitments: Vec<Commitments> = alive
                .iter()
                .map(|&l| self.tasks[task].commitments[l].clone().invariant("alive"))
                .collect();
            // Rotation verification of eq (13).
            for k in self.live_indices() {
                if k == self.me || !self.is_designated_verifier(k) {
                    continue;
                }
                let Some(f_values) = self.tasks[task].disclosures[k].clone() else {
                    continue;
                };
                let live_values: Vec<u64> = alive.iter().map(|&l| f_values[l]).collect();
                let psi_k = self.tasks[task].pairs[k].invariant("responsive").psi;
                if verify_f_disclosure(
                    &group,
                    &commitments,
                    k,
                    self.config.pseudonym(k),
                    &live_values,
                    psi_k,
                )
                .is_err()
                {
                    self.abort(AbortReason::InvalidDisclosure { discloser: k }, out);
                    return;
                }
            }
            // Identify the winner from the first `winner_points` available
            // disclosures (eq (14)).
            let first_price = self.tasks[task]
                .first_price
                .invariant("resolved in round 2");
            let needed = encoding.winner_points(first_price);
            let valid_disclosers: Vec<usize> = self
                .live_indices()
                .into_iter()
                .filter(|&k| self.tasks[task].disclosures[k].is_some())
                .take(needed)
                .collect();
            let winner = if valid_disclosers.len() >= needed {
                let points: Vec<u64> = valid_disclosers
                    .iter()
                    .map(|&k| self.config.pseudonym(k))
                    .collect();
                let f_columns: Vec<Vec<u64>> = alive
                    .iter()
                    .map(|&l| {
                        valid_disclosers
                            .iter()
                            .map(|&k| {
                                self.tasks[task].disclosures[k]
                                    .as_ref()
                                    .invariant("present")[l]
                            })
                            .collect()
                    })
                    .collect();
                match identify_winner(&group, &encoding, first_price, &points, &f_columns) {
                    Ok(pos) => alive[pos],
                    Err(_) => {
                        self.abort(AbortReason::NoWinner, out);
                        return;
                    }
                }
            } else {
                // Not enough live share points for eq (14): fall back to
                // the winner claims broadcast in round 2.
                match self.identify_from_claims(task, first_price, &valid_disclosers) {
                    Ok(w) => w,
                    Err(reason) => {
                        self.abort(reason, out);
                        return;
                    }
                }
            };
            self.tasks[task].winner = Some(winner);
            // Publish the winner-excluded pair (eq (15)).
            let my_pair = self.tasks[task].pairs[self.me].invariant("I published in round 1");
            let winner_bundle = self.tasks[task].bundles[winner].invariant("winner is alive");
            let honest = exclude_winner(&group, &my_pair, winner_bundle.e, winner_bundle.h)
                .invariant("honest pairs divide cleanly");
            self.tasks[task].excluded[self.me] = Some(honest);
            let mut pair = honest;
            if matches!(self.behavior, Behavior::WrongExcluded) {
                pair.lambda = group.zp().mul(pair.lambda, group.z1());
            }
            out.push((Recipient::Broadcast, Body::Excluded { task, pair }));
        }
    }

    /// Winner identification when live disclosures alone cannot reach the
    /// `y* + c + 1` points equation (14) needs. Agents whose bid equals
    /// the first price claimed their own `(f, h)` evaluations at the
    /// missing pseudonyms in round 2; each claimed point is bound to the
    /// claimant's Phase II.3 commitments via equation (9), the claimant's
    /// f-column is interpolated over the combined point set, and the
    /// lowest-indexed claimant whose column vanishes at zero wins.
    ///
    /// A false claim cannot pass: fabricated values fail the commitment
    /// binding (hard abort), and truthful values of a higher-degree
    /// polynomial fail the interpolation test except with probability
    /// `≈ 1/q`.
    fn identify_from_claims(
        &self,
        task: usize,
        first_price: u64,
        disclosers: &[usize],
    ) -> Result<usize, AbortReason> {
        let group = *self.config.group();
        let encoding = *self.config.encoding();
        let mut any_claim = false;
        for k in self.live_indices() {
            let Some(claim) = self.tasks[task].claims[k].as_ref() else {
                continue;
            };
            any_claim = true;
            let commitments = self.tasks[task].commitments[k]
                .as_ref()
                .invariant("live implies committed");
            let mut alphas: Vec<u64> = disclosers
                .iter()
                .map(|&j| self.config.pseudonym(j))
                .collect();
            let mut column: Vec<u64> = disclosers
                .iter()
                .map(|&j| {
                    self.tasks[task].disclosures[j]
                        .as_ref()
                        .invariant("present")[k]
                })
                .collect();
            let mut seen = vec![false; self.n()];
            for &(l, f, h) in claim {
                // A claimed point may only fill a genuinely missing
                // pseudonym, once.
                if l >= self.n() || seen[l] || disclosers.contains(&l) {
                    return Err(AbortReason::InvalidDisclosure { discloser: k });
                }
                seen[l] = true;
                let alpha = self.config.pseudonym(l);
                if verify_claimed_f_point(&group, commitments, l, alpha, f, h).is_err() {
                    return Err(AbortReason::InvalidDisclosure { discloser: k });
                }
                alphas.push(alpha);
                column.push(f);
            }
            if identify_winner(&group, &encoding, first_price, &alphas, &[column]).is_ok() {
                return Ok(k);
            }
        }
        // No claim at all is indistinguishable from a crashed winner:
        // unresolvable, as before the fallback existed.
        if any_claim {
            Err(AbortReason::NoWinner)
        } else {
            Err(AbortReason::Unresolvable)
        }
    }

    /// Round 4 — Phase III.4 + IV: verify excluded pairs, resolve the
    /// second price, submit the payment claim.
    fn round_second_price_and_claim(
        &mut self,
        inbox: Vec<Delivered<Body>>,
        out: &mut Vec<(Recipient, Body)>,
    ) {
        if matches!(
            self.behavior,
            Behavior::Silent | Behavior::SilentAfterBidding
        ) {
            return;
        }
        for msg in inbox {
            if let Body::Excluded { task, pair } = msg.payload {
                if msg.from.0 != self.me {
                    self.tasks[task].excluded[msg.from.0] = Some(pair);
                }
            }
        }
        let group = *self.config.group();
        let encoding = *self.config.encoding();
        // Silent publishers become faulty.
        for l in self.live_indices() {
            if (0..self.m()).any(|t| self.tasks[t].excluded[l].is_none()) {
                self.faulty[l] = true;
            }
        }
        if self.fault_count() > encoding.faults() {
            self.abort(
                AbortReason::TooManyFaults {
                    observed: self.fault_count(),
                    tolerated: encoding.faults(),
                },
                out,
            );
            return;
        }
        let alive = self.alive_indices();
        for task in 0..self.m() {
            let winner = self.tasks[task].winner.invariant("identified in round 3");
            let winner_pos_in_alive = alive
                .iter()
                .position(|&l| l == winner)
                .invariant("winner is alive");
            let commitments: Vec<Commitments> = alive
                .iter()
                .map(|&l| self.tasks[task].commitments[l].clone().invariant("alive"))
                .collect();
            // Rotation verification of the post-exclusion eq (11).
            for &l in &self.live_indices() {
                if l == self.me || !self.is_designated_verifier(l) {
                    continue;
                }
                let pair = self.tasks[task].excluded[l].invariant("live implies published");
                if verify_lambda_psi(
                    &group,
                    &commitments,
                    l,
                    self.config.pseudonym(l),
                    &pair,
                    Some(winner_pos_in_alive),
                )
                .is_err()
                {
                    self.abort(AbortReason::InvalidExcluded { publisher: l }, out);
                    return;
                }
            }
            // Resolve the second price from the responsive excluded points.
            let responsive = self.live_indices();
            let alphas: Vec<u64> = responsive
                .iter()
                .map(|&l| self.config.pseudonym(l))
                .collect();
            let lambdas: Vec<u64> = responsive
                .iter()
                .map(|&l| self.tasks[task].excluded[l].invariant("responsive").lambda)
                .collect();
            match resolve_min_bid(&group, &encoding, &alphas, &lambdas) {
                Ok(price) => self.tasks[task].second_price = Some(price.bid),
                Err(_) => {
                    self.abort(AbortReason::Unresolvable, out);
                    return;
                }
            }
        }
        // Phase IV: compute the payment vector and submit it.
        let mut payments = vec![0u64; self.n()];
        for task in 0..self.m() {
            let winner = self.tasks[task].winner.invariant("identified");
            payments[winner] += self.tasks[task].second_price.invariant("resolved");
        }
        self.claim = Some(payments.clone());
        let mut claimed = payments;
        if let Behavior::InflatedPaymentClaim { delta } = self.behavior {
            claimed[self.me] += delta;
            self.claim = Some(claimed.clone());
        }
        out.push((
            Recipient::Broadcast,
            Body::PaymentClaim { payments: claimed },
        ));
        self.status = AgentStatus::Done;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn config(n: usize, c: usize, seed: u64) -> DmwConfig {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        DmwConfig::generate(n, c, &mut rng).unwrap()
    }

    #[test]
    fn agent_starts_running_with_validated_bids() {
        let cfg = config(5, 1, 1);
        let agent = DmwAgent::new(cfg, 0, vec![1, 2], Behavior::Suggested, 42);
        assert_eq!(*agent.status(), AgentStatus::Running);
        assert!(agent.claim().is_none());
        assert!(agent.abort_reason().is_none());
    }

    #[test]
    #[should_panic(expected = "outside W")]
    fn out_of_range_bid_panics() {
        let cfg = config(5, 1, 2);
        // w_max = 3 for n=5, c=1.
        let _ = DmwAgent::new(cfg, 0, vec![4], Behavior::Suggested, 42);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_index_panics() {
        let cfg = config(4, 0, 3);
        let _ = DmwAgent::new(cfg, 9, vec![1], Behavior::Suggested, 42);
    }

    #[test]
    fn silent_agent_emits_nothing() {
        let cfg = config(5, 1, 4);
        let mut agent = DmwAgent::new(cfg, 2, vec![1], Behavior::Silent, 42);
        for round in 0..5 {
            assert!(agent.on_round(round, vec![]).is_empty());
        }
    }

    #[test]
    fn bidding_round_emits_shares_and_commitments() {
        let cfg = config(5, 1, 5);
        let mut agent = DmwAgent::new(cfg, 0, vec![1, 3], Behavior::Suggested, 42);
        let out = agent.on_round(0, vec![]);
        let shares = out
            .iter()
            .filter(|(_, b)| matches!(b, Body::Shares { .. }))
            .count();
        let commits = out
            .iter()
            .filter(|(r, b)| matches!(b, Body::Commit { .. }) && matches!(r, Recipient::Broadcast))
            .count();
        // m = 2 tasks: 4 unicast share bundles each, one commit broadcast
        // each.
        assert_eq!(shares, 8);
        assert_eq!(commits, 2);
    }

    #[test]
    fn peer_abort_is_honoured_at_any_round() {
        let cfg = config(5, 1, 6);
        let mut agent = DmwAgent::new(cfg, 0, vec![1], Behavior::Suggested, 42);
        let _ = agent.on_round(0, vec![]);
        let abort = Delivered {
            from: NodeId(3),
            broadcast: true,
            payload: Body::Abort {
                reason: AbortReason::Unresolvable,
            },
        };
        let out = agent.on_round(1, vec![abort]);
        assert!(out.is_empty());
        assert_eq!(
            agent.abort_reason(),
            Some(AbortReason::PeerAborted { peer: 3 })
        );
    }

    #[test]
    fn missing_everyone_aborts_with_too_many_faults() {
        // An agent that hears from nobody in the bidding round sees n - 1
        // faults, far beyond any tolerated c.
        let cfg = config(5, 1, 7);
        let mut agent = DmwAgent::new(cfg, 0, vec![1], Behavior::Suggested, 42);
        let _ = agent.on_round(0, vec![]);
        let out = agent.on_round(1, vec![]);
        assert!(matches!(
            agent.abort_reason(),
            Some(AbortReason::TooManyFaults {
                observed: 4,
                tolerated: 1
            })
        ));
        // The abort is broadcast so peers terminate too.
        assert!(out
            .iter()
            .any(|(r, b)| matches!(b, Body::Abort { .. }) && matches!(r, Recipient::Broadcast)));
    }
}
