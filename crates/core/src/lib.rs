//! **Distributed MinWork (DMW)** — a faithful, privacy-preserving
//! distributed mechanism for scheduling on unrelated machines.
//!
//! This crate is a from-scratch reproduction of the mechanism of
//! T. E. Carroll and D. Grosu, *"Distributed algorithmic mechanism design
//! for scheduling on unrelated machines"* (PODC 2005 brief announcement;
//! extended version in J. Parallel Distrib. Comput. 71, 2011). DMW removes
//! the trusted center of Nisan–Ronen's MinWork mechanism: the agents
//! themselves compute the schedule and the payments by running, for every
//! task, a *distributed Vickrey auction* built on degree-encoded secret
//! sharing, Pedersen commitments and distributed Lagrange degree resolution
//! (substrates: [`dmw_crypto`], [`dmw_modmath`]), over a simulated network
//! ([`dmw_simnet`]).
//!
//! The crate layers, bottom to top:
//!
//! * [`config`] — Phase I (*Initialization*): group parameters, pseudonyms,
//!   bid set, fault threshold;
//! * [`messages`] — the protocol message vocabulary with wire-size
//!   accounting (feeding the paper's Table 1 communication measurements);
//! * [`strategy`] — the suggested strategy plus a library of *deviating*
//!   behaviors used to test faithfulness (Theorems 4–5) empirically;
//! * [`agent`] — the four-phase per-agent state machine (Bidding,
//!   Allocating Tasks, Payments), which detects deviations and aborts;
//! * [`payment`] — the payment infrastructure stub: payments are issued
//!   only when the agents' claims agree (Phase IV);
//! * [`runner`] — drives `n` agents over the simulated network, collects
//!   the outcome, traffic statistics and a message trace (Fig. 2);
//! * [`batch`] — fans *independent* trials (and, inside a trial, the
//!   share-verification work) across a thread pool with per-trial seeded
//!   RNG streams, bit-identical to sequential execution;
//! * [`collusion`] — coalition attacks against losing bids, measuring the
//!   privacy threshold of Theorem 10;
//! * [`audit`] — faithfulness / strong-voluntary-participation experiment
//!   harnesses (Theorems 4–9).
//!
//! # Quickstart
//!
//! ```
//! use dmw::config::DmwConfig;
//! use dmw::runner::DmwRunner;
//! use dmw_mechanism::ExecutionTimes;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! // n = 5 agents, c = 1 tolerated fault; bids live in W = {1, 2, 3}.
//! let config = DmwConfig::generate(5, 1, &mut rng)?;
//! // A 5-agent × 2-task bid matrix (true values, reported honestly).
//! let bids = ExecutionTimes::from_rows(vec![
//!     vec![2, 3],
//!     vec![1, 3],
//!     vec![3, 1],
//!     vec![2, 2],
//!     vec![3, 3],
//! ])?;
//! let run = DmwRunner::new(config).run_honest(&bids, &mut rng)?;
//! let outcome = run.completed()?;
//! // Task 1 goes to agent 2 (bid 1), paid the second price 2.
//! assert_eq!(outcome.schedule.agent_of(0.into()), Some(1.into()));
//! assert_eq!(outcome.payments[1], 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod audit;
pub mod batch;
pub mod codec;
pub mod collusion;
pub mod config;
pub mod error;
pub mod identity;
pub mod messages;
pub mod obedient;
pub mod payment;
pub mod phases;
pub mod related_distributed;
pub mod reliable;
pub mod repeated;
pub mod runner;
pub mod strategy;
pub mod trace;

pub use config::DmwConfig;
pub use error::DmwError;
pub use runner::{CompletedOutcome, DmwRun, DmwRunner, Engine, RunResult};
pub use strategy::{Behavior, VerificationPolicy};
