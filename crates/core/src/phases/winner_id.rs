//! Phase III.3 — verify disclosures, identify the winner, publish the
//! winner-excluded pair.

use crate::agent::{DmwAgent, Invariant};
use crate::error::AbortReason;
use crate::messages::Body;
use crate::strategy::Behavior;
use dmw_crypto::resolution::{
    exclude_winner, identify_winner, verify_claimed_f_point, verify_f_disclosure,
};
use dmw_crypto::Commitments;
use dmw_simnet::Recipient;

// dmw-lint: allow-file(L1-index): agent/task indices are validated at
// `DmwAgent` construction and every per-agent vector is allocated with
// length `n` up front (see `crate::agent`); per-site `.get()` plumbing
// would bury the protocol equations.

/// Complete once every designated discloser's `f`-column is in, for
/// every task. Tasks flagged for the winner-claim fallback have no
/// predictable sender set, so they are never "complete" — the patience
/// budget drives them.
pub(crate) fn ready(agent: &DmwAgent) -> bool {
    agent
        .tasks
        .iter()
        .all(|t| !t.needs_fallback && t.disclosers.iter().all(|&k| t.disclosures[k].is_some()))
}

/// Verifies the designated disclosures (eq (13)), identifies the winner
/// (eq (14), with the claim fallback), and publishes the excluded pair
/// (eq (15)).
pub(crate) fn act(agent: &mut DmwAgent, out: &mut Vec<(Recipient, Body)>) {
    if matches!(
        agent.behavior,
        Behavior::Silent | Behavior::SilentAfterBidding
    ) {
        return;
    }
    let group = *agent.config.group();
    let encoding = *agent.config.encoding();
    let alive = agent.alive_indices();
    for task in 0..agent.m() {
        let commitments: Vec<Commitments> = alive
            .iter()
            .map(|&l| agent.tasks[task].commitments[l].clone().invariant("alive"))
            .collect();
        // Rotation verification of eq (13).
        for k in agent.live_indices() {
            if k == agent.me || !agent.is_designated_verifier(k) {
                continue;
            }
            let Some(f_values) = agent.tasks[task].disclosures[k].clone() else {
                continue;
            };
            let live_values: Vec<u64> = alive.iter().map(|&l| f_values[l]).collect();
            let psi_k = agent.tasks[task].pairs[k].invariant("responsive").psi;
            if verify_f_disclosure(
                &group,
                &commitments,
                k,
                agent.config.pseudonym(k),
                &live_values,
                psi_k,
            )
            .is_err()
            {
                agent.abort(AbortReason::InvalidDisclosure { discloser: k }, out);
                return;
            }
        }
        // Identify the winner from the first `winner_points` available
        // disclosures (eq (14)).
        let first_price = agent.tasks[task]
            .first_price
            .invariant("resolved by the resolution phase");
        let needed = encoding.winner_points(first_price);
        let valid_disclosers: Vec<usize> = agent
            .live_indices()
            .into_iter()
            .filter(|&k| agent.tasks[task].disclosures[k].is_some())
            .take(needed)
            .collect();
        let winner = if valid_disclosers.len() >= needed {
            let points: Vec<u64> = valid_disclosers
                .iter()
                .map(|&k| agent.config.pseudonym(k))
                .collect();
            let f_columns: Vec<Vec<u64>> = alive
                .iter()
                .map(|&l| {
                    valid_disclosers
                        .iter()
                        .map(|&k| {
                            agent.tasks[task].disclosures[k]
                                .as_ref()
                                .invariant("present")[l]
                        })
                        .collect()
                })
                .collect();
            match identify_winner(&group, &encoding, first_price, &points, &f_columns) {
                Ok(pos) => alive[pos],
                Err(_) => {
                    agent.abort(AbortReason::NoWinner, out);
                    return;
                }
            }
        } else {
            // Not enough live share points for eq (14): fall back to
            // the winner claims broadcast by the resolution phase.
            match identify_from_claims(agent, task, first_price, &valid_disclosers) {
                Ok(w) => w,
                Err(reason) => {
                    agent.abort(reason, out);
                    return;
                }
            }
        };
        agent.tasks[task].winner = Some(winner);
        // Publish the winner-excluded pair (eq (15)).
        let my_pair =
            agent.tasks[task].pairs[agent.me].invariant("I published in the commitments phase");
        let winner_bundle = agent.tasks[task].bundles[winner].invariant("winner is alive");
        let honest = exclude_winner(&group, &my_pair, winner_bundle.e, winner_bundle.h)
            .invariant("honest pairs divide cleanly");
        agent.tasks[task].excluded[agent.me] = Some(honest);
        let mut pair = honest;
        if matches!(agent.behavior, Behavior::WrongExcluded) {
            pair.lambda = group.zp().mul(pair.lambda, group.z1());
        }
        out.push((Recipient::Broadcast, Body::Excluded { task, pair }));
    }
}

/// Winner identification when live disclosures alone cannot reach the
/// `y* + c + 1` points equation (14) needs. Agents whose bid equals
/// the first price claimed their own `(f, h)` evaluations at the
/// missing pseudonyms during resolution; each claimed point is bound to
/// the claimant's Phase II.3 commitments via equation (9), the
/// claimant's f-column is interpolated over the combined point set, and
/// the lowest-indexed claimant whose column vanishes at zero wins.
///
/// A false claim cannot pass: fabricated values fail the commitment
/// binding (hard abort), and truthful values of a higher-degree
/// polynomial fail the interpolation test except with probability
/// `≈ 1/q`.
fn identify_from_claims(
    agent: &DmwAgent,
    task: usize,
    first_price: u64,
    disclosers: &[usize],
) -> Result<usize, AbortReason> {
    let group = *agent.config.group();
    let encoding = *agent.config.encoding();
    let mut any_claim = false;
    for k in agent.live_indices() {
        let Some(claim) = agent.tasks[task].claims[k].as_ref() else {
            continue;
        };
        any_claim = true;
        let commitments = agent.tasks[task].commitments[k]
            .as_ref()
            .invariant("live implies committed");
        let mut alphas: Vec<u64> = disclosers
            .iter()
            .map(|&j| agent.config.pseudonym(j))
            .collect();
        let mut column: Vec<u64> = disclosers
            .iter()
            .map(|&j| {
                agent.tasks[task].disclosures[j]
                    .as_ref()
                    .invariant("present")[k]
            })
            .collect();
        let mut seen = vec![false; agent.n()];
        for &(l, f, h) in claim {
            // A claimed point may only fill a genuinely missing
            // pseudonym, once.
            if l >= agent.n() || seen[l] || disclosers.contains(&l) {
                return Err(AbortReason::InvalidDisclosure { discloser: k });
            }
            seen[l] = true;
            let alpha = agent.config.pseudonym(l);
            if verify_claimed_f_point(&group, commitments, l, alpha, f, h).is_err() {
                return Err(AbortReason::InvalidDisclosure { discloser: k });
            }
            alphas.push(alpha);
            column.push(f);
        }
        if identify_winner(&group, &encoding, first_price, &alphas, &[column]).is_ok() {
            return Ok(k);
        }
    }
    // No claim at all is indistinguishable from a crashed winner:
    // unresolvable, as before the fallback existed.
    if any_claim {
        Err(AbortReason::NoWinner)
    } else {
        Err(AbortReason::Unresolvable)
    }
}
