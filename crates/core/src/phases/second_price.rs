//! Phase III.4 + IV — verify excluded pairs, resolve the second price,
//! submit the payment claim.

use crate::agent::{AgentStatus, DmwAgent, Invariant};
use crate::error::AbortReason;
use crate::messages::Body;
use crate::strategy::Behavior;
use dmw_crypto::resolution::{resolve_min_bid, verify_lambda_psi};
use dmw_crypto::Commitments;
use dmw_simnet::Recipient;

// dmw-lint: allow-file(L1-index): agent/task indices are validated at
// `DmwAgent` construction and every per-agent vector is allocated with
// length `n` up front (see `crate::agent`); per-site `.get()` plumbing
// would bury the protocol equations.

/// Complete once an excluded pair has arrived from every responsive
/// peer for every task.
pub(crate) fn ready(agent: &DmwAgent) -> bool {
    agent
        .live_indices()
        .into_iter()
        .all(|l| l == agent.me || (0..agent.m()).all(|t| agent.tasks[t].excluded[l].is_some()))
}

/// Verifies the excluded pairs (post-exclusion eq (11)), resolves the
/// second price, computes the payment vector and submits the claim —
/// the agent's terminal act.
pub(crate) fn act(agent: &mut DmwAgent, out: &mut Vec<(Recipient, Body)>) {
    if matches!(
        agent.behavior,
        Behavior::Silent | Behavior::SilentAfterBidding
    ) {
        return;
    }
    let group = *agent.config.group();
    let encoding = *agent.config.encoding();
    // Silent publishers become faulty.
    for l in agent.live_indices() {
        if (0..agent.m()).any(|t| agent.tasks[t].excluded[l].is_none()) {
            agent.faulty[l] = true;
        }
    }
    if agent.fault_count() > encoding.faults() {
        agent.abort(
            AbortReason::TooManyFaults {
                observed: agent.fault_count(),
                tolerated: encoding.faults(),
            },
            out,
        );
        return;
    }
    let alive = agent.alive_indices();
    for task in 0..agent.m() {
        let winner = agent.tasks[task]
            .winner
            .invariant("identified by the winner-id phase");
        let winner_pos_in_alive = alive
            .iter()
            .position(|&l| l == winner)
            .invariant("winner is alive");
        let commitments: Vec<Commitments> = alive
            .iter()
            .map(|&l| agent.tasks[task].commitments[l].clone().invariant("alive"))
            .collect();
        // Rotation verification of the post-exclusion eq (11).
        for &l in &agent.live_indices() {
            if l == agent.me || !agent.is_designated_verifier(l) {
                continue;
            }
            let pair = agent.tasks[task].excluded[l].invariant("live implies published");
            if verify_lambda_psi(
                &group,
                &commitments,
                l,
                agent.config.pseudonym(l),
                &pair,
                Some(winner_pos_in_alive),
            )
            .is_err()
            {
                agent.abort(AbortReason::InvalidExcluded { publisher: l }, out);
                return;
            }
        }
        // Resolve the second price from the responsive excluded points.
        let responsive = agent.live_indices();
        let alphas: Vec<u64> = responsive
            .iter()
            .map(|&l| agent.config.pseudonym(l))
            .collect();
        let lambdas: Vec<u64> = responsive
            .iter()
            .map(|&l| agent.tasks[task].excluded[l].invariant("responsive").lambda)
            .collect();
        match resolve_min_bid(&group, &encoding, &alphas, &lambdas) {
            Ok(price) => agent.tasks[task].second_price = Some(price.bid),
            Err(_) => {
                agent.abort(AbortReason::Unresolvable, out);
                return;
            }
        }
    }
    // Phase IV: compute the payment vector and submit it.
    let mut payments = vec![0u64; agent.n()];
    for task in 0..agent.m() {
        let winner = agent.tasks[task].winner.invariant("identified");
        payments[winner] += agent.tasks[task].second_price.invariant("resolved");
    }
    agent.claim = Some(payments.clone());
    let mut claimed = payments;
    if let Behavior::InflatedPaymentClaim { delta } = agent.behavior {
        claimed[agent.me] += delta;
        agent.claim = Some(claimed.clone());
    }
    out.push((
        Recipient::Broadcast,
        Body::PaymentClaim { payments: claimed },
    ));
    agent.status = AgentStatus::Done;
}
