//! Phase III.1 + III.2 publication — verify received bundles against
//! commitments, fix the participation mask, publish `Λ/Ψ`.

use crate::agent::{DmwAgent, Invariant};
use crate::error::AbortReason;
use crate::messages::Body;
use crate::strategy::Behavior;
use dmw_crypto::commitments::verify_shares_batch;
use dmw_crypto::resolution::compute_lambda_psi;
use dmw_obs::{Key, MetricsSink};
use dmw_simnet::Recipient;

// dmw-lint: allow-file(L1-index): agent/task indices are validated at
// `DmwAgent` construction and every per-agent vector is allocated with
// length `n` up front (see `crate::agent`); per-site `.get()` plumbing
// would bury the protocol equations.

/// Complete once every peer's share bundle *and* commitments have
/// arrived for every task — the full bidding fan-in.
pub(crate) fn ready(agent: &DmwAgent) -> bool {
    (0..agent.n()).all(|l| {
        l == agent.me
            || (0..agent.m()).all(|t| {
                agent.tasks[t].bundles[l].is_some() && agent.tasks[t].commitments[l].is_some()
            })
    })
}

/// Fixes the participation mask from whatever arrived, verifies every
/// live sender's bundle (III.1, eqs (7)–(9)), and publishes `Λ/Ψ` over
/// the live set (III.2, eq (10)).
pub(crate) fn act(agent: &mut DmwAgent, out: &mut Vec<(Recipient, Body)>) {
    if matches!(agent.behavior, Behavior::Silent) {
        return;
    }
    // An agent is alive iff its shares AND commitments arrived for
    // every task.
    for l in 0..agent.n() {
        agent.alive[l] = (0..agent.m()).all(|t| {
            agent.tasks[t].bundles[l].is_some() && agent.tasks[t].commitments[l].is_some()
        });
    }
    let faults = agent.fault_count();
    if faults > agent.config.encoding().faults() {
        agent.abort(
            AbortReason::TooManyFaults {
                observed: faults,
                tolerated: agent.config.encoding().faults(),
            },
            out,
        );
        return;
    }
    // Verify every live sender's bundle (III.1, eqs (7)–(9)). The
    // (task, sender) checks are independent, so they are submitted as
    // one batch and fanned over `verify_width` threads; the batch
    // reports the first failure in the same row-major (task, sender)
    // order the sequential loop scanned, so detection is
    // width-invariant.
    let group = *agent.config.group();
    let my_alpha = agent.config.pseudonym(agent.me);
    let (bad_sender, submitted) = {
        let mut items = Vec::new();
        let mut senders = Vec::new();
        for task in 0..agent.m() {
            for l in 0..agent.n() {
                if !agent.alive[l] || l == agent.me {
                    continue;
                }
                let bundle = agent.tasks[task].bundles[l].invariant("alive implies present");
                let commitments = agent.tasks[task].commitments[l]
                    .as_ref()
                    .invariant("alive implies present");
                items.push((commitments, bundle));
                senders.push(l);
            }
        }
        let submitted = items.len() as u64;
        let bad = verify_shares_batch(&group, my_alpha, &items, agent.verify_width)
            .err()
            .map(|failure| {
                *senders
                    .get(failure.index)
                    .invariant("batch failure indexes a submitted item")
            });
        (bad, submitted)
    };
    let verified = Key::named("shares_verified").agent(agent.metric_agent());
    agent.metrics.incr(verified, submitted);
    if let Some(sender) = bad_sender {
        agent.abort(AbortReason::InvalidShares { sender }, out);
        return;
    }
    if matches!(agent.behavior, Behavior::SilentAfterBidding) {
        return;
    }
    // Publish lambda/psi over the live set (III.2, eq (10)).
    let included = agent.alive.clone();
    let alive = agent.alive_indices();
    for task in 0..agent.m() {
        let e_shares: Vec<u64> = alive
            .iter()
            .map(|&l| agent.tasks[task].bundles[l].invariant("alive").e)
            .collect();
        let h_shares: Vec<u64> = alive
            .iter()
            .map(|&l| agent.tasks[task].bundles[l].invariant("alive").h)
            .collect();
        let honest = compute_lambda_psi(&group, &e_shares, &h_shares);
        agent.tasks[task].pairs[agent.me] = Some(honest);
        let mut pair = honest;
        if matches!(agent.behavior, Behavior::WrongLambda) {
            pair.lambda = group.zp().mul(pair.lambda, group.z1());
        }
        out.push((
            Recipient::Broadcast,
            Body::Lambda {
                task,
                pair,
                included: included.clone(),
            },
        ));
    }
}
