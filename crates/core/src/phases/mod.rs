//! The typed phase state machine driving [`crate::agent::DmwAgent`].
//!
//! The paper specifies DMW as message-triggered phases (II.2–IV), not as
//! numbered rounds; this module makes that explicit. Each phase is one
//! submodule exporting two functions over the agent state:
//!
//! * `ready(&DmwAgent) -> bool` — the *completeness predicate*: have all
//!   the messages this phase is waiting for arrived?
//! * `act(&mut DmwAgent, &mut out)` — the phase's protocol logic:
//!   verify, resolve, publish, and possibly abort.
//!
//! The agent's `poll` loop fires `act` as soon as `ready` holds **or**
//! the agent's patience budget expires, then advances to
//! [`Phase::next`]. Nothing in the protocol logic consults a round
//! number (dmw-lint rule L6 forbids it here), which is what lets the
//! same agent run unchanged over the lockstep transport and over
//! asynchronous delayed transports.
//!
//! | phase | paper step | waits for | acts (sends) |
//! |-------|------------|-----------|--------------|
//! | [`Phase::Bidding`] | II | nothing | share bundles (unicast), commitments (broadcast) |
//! | [`Phase::Commitments`] | III.1–III.2 | all peers' shares + commitments | verify shares (eqs (7)–(9)); publish `Λ/Ψ` + participation mask |
//! | [`Phase::Resolution`] | III.2–III.3 | `Λ/Ψ` from every alive peer | check masks; verify `Λ/Ψ` (eq (11)); resolve first price (eq (12)); disclose `f`-shares |
//! | [`Phase::WinnerId`] | III.3–III.4 | the designated disclosures | verify disclosures (eq (13)); identify winner (eq (14)); publish excluded `Λ'/Ψ'` (eq (15)) |
//! | [`Phase::SecondPrice`] | III.4–IV | excluded pairs from every responsive peer | verify excluded pairs; resolve second price; submit payment claim |
//! | [`Phase::Claimed`] | — | — | terminal: nothing further |

use crate::agent::DmwAgent;
use crate::messages::Body;
use dmw_simnet::Recipient;

pub mod bidding;
pub mod commitments;
pub mod resolution;
pub mod second_price;
pub mod winner_id;

/// Protocol progress of one agent: the typed replacement for raw round
/// dispatch. Transitions are linear — each phase hands over to the next
/// via [`Phase::next`] once it has acted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Phase II: sample polynomials, distribute shares, commit.
    Bidding,
    /// Phase III.1–III.2: collect the bidding traffic, verify shares,
    /// publish `Λ/Ψ`.
    Commitments,
    /// Phase III.2–III.3: verify published pairs, resolve the first
    /// price, kick off disclosure.
    Resolution,
    /// Phase III.3–III.4: verify disclosures, identify the winner,
    /// publish the excluded pair.
    WinnerId,
    /// Phase III.4–IV: verify excluded pairs, resolve the second price,
    /// submit the payment claim.
    SecondPrice,
    /// Terminal: the payment claim is out (or the agent never got there).
    Claimed,
}

impl Phase {
    /// Human-readable label, recorded on trace events.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Bidding => "bidding",
            Phase::Commitments => "commitments",
            Phase::Resolution => "resolution",
            Phase::WinnerId => "winner-id",
            Phase::SecondPrice => "second-price",
            Phase::Claimed => "claimed",
        }
    }

    /// The successor phase ([`Phase::Claimed`] is absorbing).
    pub fn next(self) -> Phase {
        match self {
            Phase::Bidding => Phase::Commitments,
            Phase::Commitments => Phase::Resolution,
            Phase::Resolution => Phase::WinnerId,
            Phase::WinnerId => Phase::SecondPrice,
            Phase::SecondPrice => Phase::Claimed,
            Phase::Claimed => Phase::Claimed,
        }
    }
}

/// Is the agent's current phase ready to act — i.e. has every message it
/// is waiting for arrived? A `false` answer defers the act until either
/// completeness or the patience budget, whichever comes first.
pub(crate) fn ready(agent: &DmwAgent) -> bool {
    match agent.phase {
        Phase::Bidding => bidding::ready(agent),
        Phase::Commitments => commitments::ready(agent),
        Phase::Resolution => resolution::ready(agent),
        Phase::WinnerId => winner_id::ready(agent),
        Phase::SecondPrice => second_price::ready(agent),
        Phase::Claimed => false,
    }
}

/// Runs the current phase's protocol logic, pushing any outgoing
/// messages (including a broadcast `Abort` on detection) into `out`.
pub(crate) fn act(agent: &mut DmwAgent, out: &mut Vec<(Recipient, Body)>) {
    match agent.phase {
        Phase::Bidding => bidding::act(agent, out),
        Phase::Commitments => commitments::act(agent, out),
        Phase::Resolution => resolution::act(agent, out),
        Phase::WinnerId => winner_id::act(agent, out),
        Phase::SecondPrice => second_price::act(agent, out),
        Phase::Claimed => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_advance_linearly_to_the_absorbing_terminal() {
        let walk = [
            Phase::Bidding,
            Phase::Commitments,
            Phase::Resolution,
            Phase::WinnerId,
            Phase::SecondPrice,
            Phase::Claimed,
        ];
        for pair in walk.windows(2) {
            assert_eq!(pair[0].next(), pair[1]);
        }
        assert_eq!(Phase::Claimed.next(), Phase::Claimed);
    }

    #[test]
    fn labels_are_unique_and_stable() {
        let labels: Vec<&str> = [
            Phase::Bidding,
            Phase::Commitments,
            Phase::Resolution,
            Phase::WinnerId,
            Phase::SecondPrice,
            Phase::Claimed,
        ]
        .iter()
        .map(|p| p.label())
        .collect();
        assert_eq!(
            labels,
            vec![
                "bidding",
                "commitments",
                "resolution",
                "winner-id",
                "second-price",
                "claimed"
            ]
        );
    }
}
