//! Phase II — *Bidding*: sample polynomials, distribute shares, publish
//! commitments.

use crate::agent::{DmwAgent, Invariant};
use crate::messages::Body;
use crate::strategy::Behavior;
use dmw_crypto::polynomials::BidPolynomials;
use dmw_crypto::Commitments;
use dmw_simnet::{NodeId, Recipient};

// dmw-lint: allow-file(L1-index): agent/task indices are validated at
// `DmwAgent` construction and every per-agent vector is allocated with
// length `n` up front (see `crate::agent`); per-site `.get()` plumbing
// would bury the protocol equations.

/// Bidding waits for nothing: it opens the protocol.
pub(crate) fn ready(_agent: &DmwAgent) -> bool {
    true
}

/// Samples the polynomial quadruple per task, unicasts share bundles and
/// broadcasts commitments (II.2–II.3).
pub(crate) fn act(agent: &mut DmwAgent, out: &mut Vec<(Recipient, Body)>) {
    if matches!(agent.behavior, Behavior::Silent) {
        return;
    }
    let group = *agent.config.group();
    let encoding = *agent.config.encoding();
    let zq = group.zq();
    for task in 0..agent.m() {
        let polys = BidPolynomials::generate(&group, &encoding, agent.bids[task], &mut agent.rng)
            .invariant("bids validated at construction");
        // Publish commitments (II.3); a tamperer keeps the honest copy
        // in its own state.
        let honest = Commitments::commit(&group, &encoding, &polys);
        let published = match agent.behavior {
            Behavior::TamperedCommitments => honest.clone().with_tampered_q(&group, 0),
            _ => honest.clone(),
        };
        let my_bundle = polys.share_for(&zq, agent.config.pseudonym(agent.me));
        agent.tasks[task].bundles[agent.me] = Some(my_bundle);
        agent.tasks[task].commitments[agent.me] = Some(honest);
        out.push((
            Recipient::Broadcast,
            Body::Commit {
                task,
                commitments: published,
            },
        ));
        // Distribute shares (II.2).
        for peer in 0..agent.n() {
            if peer == agent.me {
                continue;
            }
            match agent.behavior {
                Behavior::WithholdShares => continue,
                Behavior::SelectiveShares { threshold } if peer >= threshold => continue,
                _ => {}
            }
            let mut bundle = polys.share_for(&zq, agent.config.pseudonym(peer));
            if matches!(agent.behavior, Behavior::CorruptShareTo { victim } if victim == peer) {
                bundle.e = zq.add(bundle.e, 1);
            }
            out.push((
                Recipient::Unicast(NodeId(peer)),
                Body::Shares { task, bundle },
            ));
        }
        agent.tasks[task].polys = Some(polys);
    }
}
