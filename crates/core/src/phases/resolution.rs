//! Phase III.2 verification + first-price resolution + disclosure
//! kick-off.

use crate::agent::{DmwAgent, Invariant};
use crate::error::AbortReason;
use crate::messages::Body;
use crate::strategy::Behavior;
use dmw_crypto::resolution::{resolve_min_bid, verify_lambda_psi};
use dmw_crypto::Commitments;
use dmw_simnet::Recipient;

// dmw-lint: allow-file(L1-index): agent/task indices are validated at
// `DmwAgent` construction and every per-agent vector is allocated with
// length `n` up front (see `crate::agent`); per-site `.get()` plumbing
// would bury the protocol equations.

/// Complete once a `Λ/Ψ` pair (with its participation mask) has arrived
/// from every alive peer for every task.
pub(crate) fn ready(agent: &DmwAgent) -> bool {
    agent
        .alive_indices()
        .into_iter()
        .all(|l| l == agent.me || (0..agent.m()).all(|t| agent.tasks[t].pairs[l].is_some()))
}

/// Checks participation masks, marks silent publishers faulty, verifies
/// the designated pairs (eq (11)), resolves the first price (eq (12)),
/// and opens disclosure — including the winner-claim fallback.
pub(crate) fn act(agent: &mut DmwAgent, out: &mut Vec<(Recipient, Body)>) {
    if matches!(
        agent.behavior,
        Behavior::Silent | Behavior::SilentAfterBidding
    ) {
        return;
    }
    // A publisher whose participation mask disagrees with mine is
    // evidence of selective share delivery: hard abort. Masks are
    // scanned in (publisher, task) order — the arrival order of the
    // lockstep inbox — so the reported publisher is unchanged.
    for l in 0..agent.n() {
        if l == agent.me {
            continue;
        }
        for t in 0..agent.m() {
            if let Some(mask) = &agent.tasks[t].masks[l] {
                if *mask != agent.alive {
                    agent.abort(AbortReason::InconsistentMask { publisher: l }, out);
                    return;
                }
            }
        }
    }
    let group = *agent.config.group();
    let encoding = *agent.config.encoding();
    // Silent publishers become faulty (tolerated up to c in total).
    for l in agent.alive_indices() {
        if (0..agent.m()).any(|t| agent.tasks[t].pairs[l].is_none()) {
            agent.faulty[l] = true;
        }
    }
    if agent.fault_count() > encoding.faults() {
        agent.abort(
            AbortReason::TooManyFaults {
                observed: agent.fault_count(),
                tolerated: encoding.faults(),
            },
            out,
        );
        return;
    }
    // Rotation verification of eq (11): I check my designated
    // publishers; any honest verifier detecting tampering aborts the
    // whole run.
    let alive = agent.alive_indices();
    for task in 0..agent.m() {
        let commitments: Vec<Commitments> = alive
            .iter()
            .map(|&l| agent.tasks[task].commitments[l].clone().invariant("alive"))
            .collect();
        for &l in &agent.live_indices() {
            if l == agent.me || !agent.is_designated_verifier(l) {
                continue;
            }
            let pair = agent.tasks[task].pairs[l].invariant("live implies published");
            if verify_lambda_psi(
                &group,
                &commitments,
                l,
                agent.config.pseudonym(l),
                &pair,
                None,
            )
            .is_err()
            {
                agent.abort(AbortReason::InvalidLambdaPsi { publisher: l }, out);
                return;
            }
        }
    }
    // Resolve the first price per task from the responsive points
    // (eq (12)).
    let responsive = agent.live_indices();
    let alphas: Vec<u64> = responsive
        .iter()
        .map(|&l| agent.config.pseudonym(l))
        .collect();
    for task in 0..agent.m() {
        let lambdas: Vec<u64> = responsive
            .iter()
            .map(|&l| agent.tasks[task].pairs[l].invariant("responsive").lambda)
            .collect();
        match resolve_min_bid(&group, &encoding, &alphas, &lambdas) {
            Ok(price) => agent.tasks[task].first_price = Some(price.bid),
            Err(_) => {
                agent.abort(AbortReason::Unresolvable, out);
                return;
            }
        }
    }
    // Disclose my f-column if I am among the designated disclosers:
    // the first `winner_points + c` responsive agents (the `+ c`
    // spares keep identification alive when disclosers fall silent).
    // The set is recorded per task: it is the completeness predicate of
    // the winner-identification phase.
    for task in 0..agent.m() {
        let first_price = agent.tasks[task].first_price.invariant("resolved above");
        let needed = encoding.winner_points(first_price) + encoding.faults();
        let disclosers: Vec<usize> = responsive.iter().copied().take(needed).collect();
        agent.tasks[task].disclosers = disclosers.clone();
        if disclosers.contains(&agent.me) {
            let mut f_values: Vec<u64> = (0..agent.n())
                .map(|l| agent.tasks[task].bundles[l].map(|b| b.f).unwrap_or(0))
                .collect();
            if matches!(agent.behavior, Behavior::WrongDisclosure) {
                f_values[agent.me] = group.zq().add(f_values[agent.me], 1);
            }
            agent.tasks[task].disclosures[agent.me] = Some(f_values.clone());
            out.push((Recipient::Broadcast, Body::Disclose { task, f_values }));
        }
    }
    // Identification fallback: crashes before bidding can leave fewer
    // live share points than eq (14) needs (`y* + c + 1`). An agent
    // whose own bid equals the first price supplements the missing
    // evaluations from its own polynomials; every verifier binds them
    // to its Phase II.3 commitments via eq (9) before use.
    for task in 0..agent.m() {
        let first_price = agent.tasks[task].first_price.invariant("resolved above");
        let live = agent.live_indices();
        if live.len() < encoding.winner_points(first_price) {
            // Winner identification cannot be satisfied by live
            // disclosures alone — flag it so the next phase falls back
            // to its patience budget instead of a completeness check.
            agent.tasks[task].needs_fallback = true;
        } else {
            continue;
        }
        if agent.bids[task] != first_price {
            continue;
        }
        let Some(polys) = &agent.tasks[task].polys else {
            continue;
        };
        let zq = group.zq();
        let points: Vec<(usize, u64, u64)> = (0..agent.n())
            .filter(|l| !live.contains(l))
            .map(|l| {
                let alpha = agent.config.pseudonym(l);
                (l, polys.f().eval(&zq, alpha), polys.h().eval(&zq, alpha))
            })
            .collect();
        agent.tasks[task].claims[agent.me] = Some(points.clone());
        out.push((Recipient::Broadcast, Body::WinnerClaim { task, points }));
    }
}
