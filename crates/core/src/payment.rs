//! The payment infrastructure (Phase IV).
//!
//! The paper assumes "the existence of a payment infrastructure to which
//! all agents have access" and specifies only its decision rule: "the
//! payment infrastructure issues the payment to `A_i` if the participating
//! agents agree on `P_i`; otherwise, no payment is dispensed."
//!
//! This implementation settles each entry by **majority** over the
//! submitted claims: a single deviating claim therefore cannot block
//! honest agents' payments (which would violate strong voluntary
//! participation), while any entry without a strict majority is withheld.
//! With all agents honest, claims are identical and the rule degenerates
//! to the paper's unanimity.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The outcome of settling payment claims.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Settlement {
    /// Per-agent payments in bid units (withheld entries are 0).
    pub payments: Vec<u64>,
    /// `withheld[i]` — no strict majority existed for agent `i`'s payment.
    pub withheld: Vec<bool>,
}

impl Settlement {
    /// `true` iff every entry was dispensed.
    pub fn fully_dispensed(&self) -> bool {
        self.withheld.iter().all(|&w| !w)
    }
}

/// Settles the submitted claims. `claims[k]` is one agent's claimed
/// payment vector; claims of aborted/silent agents are simply absent.
///
/// Returns `None` when no claims were submitted at all (an aborted run).
///
/// # Panics
///
/// Panics if submitted claims disagree on the number of agents.
///
/// # Example
/// ```
/// use dmw::payment::settle;
///
/// // Three honest claims outvote one inflated claim for agent 1.
/// let claims = vec![vec![2, 5], vec![2, 5], vec![2, 5], vec![2, 50]];
/// let settlement = settle(&claims).expect("claims present");
/// assert_eq!(settlement.payments, vec![2, 5]);
/// assert!(settlement.fully_dispensed());
/// ```
pub fn settle(claims: &[Vec<u64>]) -> Option<Settlement> {
    let first = claims.first()?;
    let n = first.len();
    assert!(
        claims.iter().all(|c| c.len() == n),
        "claims must cover all agents"
    );
    let mut payments = Vec::with_capacity(n);
    let mut withheld = Vec::with_capacity(n);
    for i in 0..n {
        // BTreeMap, not HashMap: `max_by_key` keeps the *last* maximum,
        // so a count tie would otherwise resolve by hash-iteration
        // order. Ordered tallying makes the pre-filter pick the largest
        // tied value, deterministically — and the strict-majority
        // filter below withholds every count tie regardless, since two
        // values cannot both exceed half the claims.
        let mut votes: BTreeMap<u64, usize> = BTreeMap::new();
        for &value in claims.iter().filter_map(|c| c.get(i)) {
            *votes.entry(value).or_insert(0) += 1;
        }
        let majority = votes
            .into_iter()
            .max_by_key(|&(_, count)| count)
            .filter(|&(_, count)| count * 2 > claims.len());
        match majority {
            Some((value, _)) => {
                payments.push(value);
                withheld.push(false);
            }
            None => {
                payments.push(0);
                withheld.push(true);
            }
        }
    }
    Some(Settlement { payments, withheld })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unanimous_claims_settle_fully() {
        let claims = vec![vec![3, 0, 5]; 4];
        let s = settle(&claims).unwrap();
        assert_eq!(s.payments, vec![3, 0, 5]);
        assert!(s.fully_dispensed());
    }

    #[test]
    fn single_deviant_claim_is_outvoted() {
        let mut claims = vec![vec![3, 0, 5]; 4];
        claims[2] = vec![3, 0, 50]; // inflates agent 2's payment
        let s = settle(&claims).unwrap();
        assert_eq!(
            s.payments,
            vec![3, 0, 5],
            "majority carries the honest value"
        );
        assert!(s.fully_dispensed());
    }

    #[test]
    fn count_ties_settle_identically_for_any_claim_order() {
        // Regression for the old HashMap tally: a 2-2 count tie used to
        // hand `max_by_key` a hash-ordered candidate stream. Every
        // permutation of the same claim multiset must now settle
        // bit-identically (withheld, since no strict majority exists).
        let orders = [
            vec![vec![3], vec![7], vec![3], vec![7]],
            vec![vec![7], vec![3], vec![7], vec![3]],
            vec![vec![7], vec![7], vec![3], vec![3]],
            vec![vec![3], vec![3], vec![7], vec![7]],
        ];
        let settlements: Vec<Settlement> = orders.iter().map(|c| settle(c).unwrap()).collect();
        assert!(settlements.iter().all(|s| *s == settlements[0]));
        assert_eq!(settlements[0].withheld, vec![true]);
        assert_eq!(settlements[0].payments, vec![0]);
    }

    #[test]
    fn tie_withholds_the_entry() {
        let claims = vec![vec![3], vec![7]];
        let s = settle(&claims).unwrap();
        assert_eq!(s.payments, vec![0]);
        assert_eq!(s.withheld, vec![true]);
        assert!(!s.fully_dispensed());
    }

    #[test]
    fn no_claims_means_no_settlement() {
        assert_eq!(settle(&[]), None);
    }

    #[test]
    #[should_panic(expected = "cover all agents")]
    fn ragged_claims_panic() {
        let _ = settle(&[vec![1, 2], vec![1]]);
    }
}
