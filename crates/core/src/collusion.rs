//! Coalition attacks on bid privacy — the empirical side of Theorem 10.
//!
//! Theorem 10 states that DMW "protects the anonymity of the losing agents
//! and the privacy of their bids when fewer than `c` agents collude", and
//! remarks that "the number of colluding agents necessary to successfully
//! expose bids is inversely proportional to the bid value". This module
//! implements the strongest share-pooling attack available to a coalition
//! and measures the exact exposure threshold:
//!
//! A coalition `C` pools the share bundles each member received from a
//! target agent. The target's bid is the degree of its `e`-polynomial
//! (equivalently its `f`-polynomial, shifted). Both have zero constant
//! terms, so the coalition runs the degree-resolution procedure of
//! Section 2.4 on its pooled points: with `|C| ≥ deg + 1` points the
//! degree — and hence the bid — is recovered; with fewer, every candidate
//! degree is consistent with the pooled shares and *nothing* is learned
//! (information-theoretic hiding of the threshold scheme).
//!
//! Both polynomials leak: `deg e = σ − c − y` (small for *high* bids) and
//! `deg f = y + c` (small for *low* bids), so the true exposure threshold
//! for bid `y` is `min(n − c − y, y + c) + 1` colluders. Along the
//! `e`-channel the paper's remark holds exactly — lower (better) bids need
//! strictly larger coalitions — while the `f`-channel caps the protection
//! of the very best bids at `y + c + 1` members. The privacy experiment
//! measures this full curve; see EXPERIMENTS.md for how it refines the
//! blanket claim of Theorem 10.

use crate::config::DmwConfig;
use dmw_crypto::polynomials::ShareBundle;
use dmw_modmath::lagrange;
use serde::{Deserialize, Serialize};

/// The result of a share-pooling attack against one target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttackOutcome {
    /// The coalition recovered the target's bid.
    Exposed {
        /// The recovered bid.
        bid: u64,
    },
    /// The pooled shares were insufficient; the bid remains hidden.
    Hidden,
}

/// Pools the coalition's share bundles received from one target agent and
/// attempts to recover the target's bid via degree resolution on the
/// `e`-shares (falling back to the `f`-shares, which expose the bid as
/// `deg f − c`).
///
/// `coalition_points[k] = (α of coalition member k, bundle received from
/// the target)`.
///
/// # Panics
///
/// Panics if two coalition members share a pseudonym (configuration
/// violation).
pub fn pool_and_attack(
    config: &DmwConfig,
    coalition_points: &[(u64, ShareBundle)],
) -> AttackOutcome {
    let zq = config.group().zq();
    let encoding = config.encoding();
    // Attack the e-polynomial: deg e = sigma - c - y.
    let e_shares: Vec<(u64, u64)> = coalition_points.iter().map(|&(a, b)| (a, b.e)).collect();
    if let Some(degree) = lagrange::resolve_zero_degree(&zq, &e_shares) {
        if let Some(bid) = encoding.bid_of_degree(degree) {
            return AttackOutcome::Exposed { bid };
        }
    }
    // Attack the f-polynomial: deg f = y + c.
    let f_shares: Vec<(u64, u64)> = coalition_points.iter().map(|&(a, b)| (a, b.f)).collect();
    if let Some(degree) = lagrange::resolve_zero_degree(&zq, &f_shares) {
        if degree > encoding.faults() {
            let bid = (degree - encoding.faults()) as u64;
            if encoding.contains_bid(bid) {
                return AttackOutcome::Exposed { bid };
            }
        }
    }
    AttackOutcome::Hidden
}

/// The predicted minimum coalition size that exposes a bid of value `y`
/// under the parameters of `config`:
/// `min(deg e, deg f) + 1 = min(n − c − y, y + c) + 1`.
pub fn predicted_exposure_threshold(config: &DmwConfig, bid: u64) -> Option<usize> {
    let e_deg = config.encoding().degree_of_bid(bid).ok()?;
    let f_deg = config.encoding().f_degree_of_bid(bid).ok()?;
    Some(e_deg.min(f_deg) + 1)
}

/// The exposure threshold along the `e`-channel alone,
/// `deg e + 1 = n − c − y + 1` — the curve behind the paper's "inversely
/// proportional to the bid value" remark.
pub fn e_channel_threshold(config: &DmwConfig, bid: u64) -> Option<usize> {
    config.encoding().degree_of_bid(bid).ok().map(|d| d + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmw_crypto::polynomials::BidPolynomials;
    use rand::SeedableRng;

    fn setup(n: usize, c: usize) -> (DmwConfig, rand::rngs::StdRng) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(999);
        let config = DmwConfig::generate(n, c, &mut rng).unwrap();
        (config, rng)
    }

    fn bundles_for(
        config: &DmwConfig,
        polys: &BidPolynomials,
        members: &[usize],
    ) -> Vec<(u64, ShareBundle)> {
        let zq = config.group().zq();
        members
            .iter()
            .map(|&k| {
                let alpha = config.pseudonym(k);
                (alpha, polys.share_for(&zq, alpha))
            })
            .collect()
    }

    #[test]
    fn coalition_at_threshold_exposes_the_bid() {
        let (config, mut rng) = setup(8, 2);
        for bid in config.encoding().bid_set() {
            let polys =
                BidPolynomials::generate(config.group(), config.encoding(), bid, &mut rng).unwrap();
            let threshold = predicted_exposure_threshold(&config, bid).unwrap();
            let members: Vec<usize> = (0..threshold).collect();
            let outcome = pool_and_attack(&config, &bundles_for(&config, &polys, &members));
            assert_eq!(outcome, AttackOutcome::Exposed { bid }, "bid {bid}");
        }
    }

    #[test]
    fn coalition_below_threshold_learns_nothing() {
        let (config, mut rng) = setup(8, 2);
        for bid in config.encoding().bid_set() {
            let polys =
                BidPolynomials::generate(config.group(), config.encoding(), bid, &mut rng).unwrap();
            let threshold = predicted_exposure_threshold(&config, bid).unwrap();
            let members: Vec<usize> = (0..threshold - 1).collect();
            // With one fewer share, resolution cannot succeed at the true
            // degree on either channel (up to the ~|W|/q accident, which
            // the assertion tolerates by checking the true bid is not
            // exposed).
            let outcome = pool_and_attack(&config, &bundles_for(&config, &polys, &members));
            assert_ne!(outcome, AttackOutcome::Exposed { bid }, "bid {bid}");
        }
    }

    #[test]
    fn e_channel_thresholds_are_inversely_related_to_bid() {
        // The paper's remark under Theorem 10: "more colluding agents are
        // required to violate the privacy of lower (better) bids" — exact
        // along the e-channel.
        let (config, _) = setup(10, 2);
        let thresholds: Vec<usize> = config
            .encoding()
            .bid_set()
            .iter()
            .map(|&b| e_channel_threshold(&config, b).unwrap())
            .collect();
        // Ascending bids, descending thresholds.
        assert!(thresholds.windows(2).all(|w| w[0] > w[1]));
        // The best (lowest) bid needs n - c colluders on this channel.
        assert_eq!(thresholds[0], 10 - 2);
    }

    #[test]
    fn full_thresholds_exceed_the_collusion_bound_for_middle_bids() {
        // min(n - c - y, y + c) + 1 >= c + 2 whenever y <= n - 2c: for
        // those bids Theorem 10's "fewer than c colluders learn nothing"
        // holds with slack.
        let (config, _) = setup(9, 2);
        for bid in config.encoding().bid_set() {
            let t = predicted_exposure_threshold(&config, bid).unwrap();
            if bid <= (9 - 2 * 2) as u64 {
                assert!(t > 2, "bid {bid}: threshold {t} must exceed c");
            }
            // And no bid is ever exposed by a single agent's shares.
            assert!(t >= 2);
        }
    }
}
