//! Reliable delivery: the per-agent ack/retransmit sublayer.
//!
//! In recovery mode (see [`crate::runner::DmwRunner::with_recovery`])
//! the runner interposes one [`ReliableEndpoint`] between each agent
//! and the transport. Every outbound protocol message is wrapped in a
//! [`Body::Sealed`] envelope carrying a per-link sequence number and a
//! piggybacked cumulative ack; inbound envelopes are unsealed,
//! deduplicated and released to the agent *in sequence order*, so the
//! agent above sees exactly the lossless message stream whatever the
//! network drops. When the retry budget against a peer is exhausted the
//! endpoint marks the peer *suspected dead*, clears the link, and
//! suppresses further traffic toward it — the graceful-degradation
//! signal the runner's exclusion vote consumes (see
//! `docs/recovery.md`).
//!
//! The default **adaptive** endpoint keeps recovery traffic
//! proportional to actual loss, with six cooperating mechanisms:
//!
//! 1. **Per-link RTT estimation** ([`RttEstimator`]): every clean ack
//!    round-trip (first transmission, never retransmitted — Karn's
//!    rule) feeds a fixed-point smoothed estimate plus variance, and
//!    the retransmit timeout becomes `srtt + 4·rttvar`, clamped to
//!    `[MIN_RTO, base_timeout]`. The clamp ceiling is what keeps
//!    [`RetryPolicy::worst_case_repair`] valid unchanged: the adaptive
//!    timeout only ever *shortens* the schedule, so the classic
//!    `base_timeout · 2^budget` window still dominates every adaptive
//!    repair and the runner's auto-scaled patience/round budgets (and
//!    the event engine's `next_timer` horizon) need no re-derivation.
//! 2. **Selective acknowledgment**: standalone [`Body::Ack`]s carry up
//!    to [`SACK_MAX_RANGES`] closed ranges describing what is buffered
//!    beyond the cumulative ack, letting the peer retire
//!    delivered-but-unackable tail messages instead of retransmitting
//!    them when a single gap stalls the cumulative ack. Overflowing
//!    range sets degrade to the cumulative-only contract.
//! 3. **NACK fast path with gap repair**: an out-of-order arrival
//!    triggers one [`Body::Nack`] naming exactly the missing range; the
//!    peer answers on its next tick with a single [`Body::Repair`]
//!    envelope coalescing *every* payload it owes on that link, without
//!    burning retry-budget attempts. Recovery traffic therefore scales
//!    with loss *events*, not lost payloads, and a monotone
//!    nack-watermark per link suppresses nack storms for gaps already
//!    requested.
//! 4. **Coalesced repair with a gather window**: every due payload on
//!    a link — timer-overdue and nack-marked alike — merges into one
//!    [`Body::Repair`] envelope per tick, and once the link has
//!    measured a round trip a due repair waits two extra ticks so
//!    losses from adjacent rounds join the same envelope. Unacked
//!    payloads older than the link's smoothed round trip ride any
//!    outgoing repair for free instead of becoming solo envelopes
//!    later.
//! 5. **Repair-on-seal**: a fresh envelope leaving for a peer absorbs
//!    any payload whose retransmission is already due on that link —
//!    the merged envelope replaces a send that was leaving anyway, so
//!    only the payload copies count as recovery overhead.
//! 6. **Ack echo**: adaptive standalone acks ship two back-to-back
//!    copies. Consecutive enqueue slots can never both be multiples of
//!    a periodic drop period `k ≥ 2`, so a deterministic loss schedule
//!    cannot silently eat an acknowledgment and convert delivered data
//!    into timer-driven duplicate storms.
//!
//! [`ReliableEndpoint::classic`] switches a link back to the v3
//! fixed-backoff behaviour (per-payload [`Body::Sealed`]
//! retransmissions, cumulative acks only) — the "before" arm of the
//! bench's recovery comparison.
//!
//! Everything here is driven by logical scheduler ticks and iterates in
//! peer-index order, so recovery behaviour is bit-replayable and
//! transport-invariant (lockstep vs. synchronous delay).

use crate::messages::Body;
use dmw_obs::{Key, MetricsSink, MetricsSnapshot};
use dmw_simnet::{Delivered, NodeId, Recipient};
use std::collections::BTreeMap;

/// Default first-retransmit timeout in scheduler ticks.
pub const RETRY_BASE_TIMEOUT: u64 = 4;

/// Default bound on retransmit attempts per message. Every retransmit
/// loop in this module is bounded by this budget (lint rule L8).
pub const RETRY_BUDGET: u32 = 5;

/// Floor on the adaptive retransmit timeout: one round out, one round
/// back is the fastest any ack can arrive on the simulated transports,
/// so timing out below 2 ticks could only produce spurious
/// retransmissions.
pub const MIN_RTO: u64 = 2;

/// Wire bound on selective-ack range sets. Beyond this many disjoint
/// gaps the ack degrades to the cumulative-only contract — the codec
/// rejects anything larger, so a range explosion cannot bloat control
/// traffic.
pub const SACK_MAX_RANGES: usize = 4;

/// Timeout/backoff parameters of the reliable sublayer.
///
/// Attempt `k` (0-based, `k < budget`) of an unacked message fires
/// `rto << k` ticks after the previous transmission, where `rto` is the
/// link's adaptive timeout (classic links pin `rto = base_timeout`).
/// The adaptive `rto` never exceeds `base_timeout`, so the whole repair
/// window spans at most `base_timeout · 2^budget` ticks before the
/// sender gives up and suspects the peer. The *final* attempt ships two
/// back-to-back copies of the envelope: consecutive enqueue slots can
/// never both sit on a `drop_every(k)` schedule (no two consecutive
/// integers are both multiples of `k ≥ 2`), so a periodic loss plan
/// that happens to stay phase-locked with the doubling cadence — every
/// earlier attempt landing on a dropped slot — still cannot kill the
/// last one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Ticks before the first retransmission on a link with no RTT
    /// samples, and the ceiling the adaptive timeout is clamped to.
    pub base_timeout: u64,
    /// Maximum number of timer-driven retransmissions per message, and
    /// the cap on nack-triggered fast retransmissions.
    pub budget: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base_timeout: RETRY_BASE_TIMEOUT,
            budget: RETRY_BUDGET,
        }
    }
}

impl RetryPolicy {
    /// Worst-case ticks from first transmission to the *last*
    /// retransmission: `base_timeout · 2^budget` (the initial
    /// `base_timeout` wait plus the doubling backoffs
    /// `base_timeout · (1 + 2 + … + 2^{budget−1})`). The adaptive RTT
    /// timeout is clamped to `base_timeout` from above, so this bound
    /// holds for both endpoint modes: a phase waiting out this window
    /// plus delivery latency is guaranteed to have seen every
    /// repairable message, which is how the runner scales agent
    /// patience in recovery mode.
    pub fn worst_case_repair(&self) -> u64 {
        self.base_timeout
            .saturating_mul(1u64.checked_shl(self.budget.min(32)).unwrap_or(u64::MAX))
    }
}

/// Deterministic per-link round-trip estimator in the classic
/// fixed-point TCP form (RFC 6298 shifts): `srtt` is kept ×8 and
/// `rttvar` ×4, updated as `srtt += (rtt − srtt)/8` and
/// `rttvar += (|rtt − srtt| − rttvar)/4`, everything in integer
/// scheduler ticks. Samples come only from clean first-transmission
/// round-trips (Karn's rule), so retransmission ambiguity never skews
/// the estimate.
#[derive(Debug, Clone, Copy, Default)]
pub struct RttEstimator {
    srtt_x8: u64,
    rttvar_x4: u64,
    samples: u64,
}

impl RttEstimator {
    /// Folds one measured round-trip (in ticks) into the estimate.
    pub fn observe(&mut self, rtt: u64) {
        if self.samples == 0 {
            self.srtt_x8 = rtt * 8;
            self.rttvar_x4 = rtt * 2;
        } else {
            let err = (self.srtt_x8 / 8).abs_diff(rtt);
            // Decay by at least one fixed-point unit: plain `x/4`
            // truncates to zero below 4 units and would pin a stale
            // variance floor forever on a jitter-free link.
            let decay = (self.rttvar_x4 / 4).max(1);
            self.rttvar_x4 = self.rttvar_x4.saturating_sub(decay) + err;
            self.srtt_x8 = self.srtt_x8 - self.srtt_x8 / 8 + rtt;
        }
        self.samples += 1;
    }

    /// Number of round-trips folded in so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The retransmit timeout: `srtt + 4·rttvar`, clamped to
    /// `[MIN_RTO, ceiling]`. With no samples yet it *is* the ceiling —
    /// a link that has never completed a round-trip behaves exactly
    /// like the classic fixed-backoff schedule, which is what keeps
    /// no-ack suspicion timelines identical across endpoint modes.
    pub fn rto(&self, ceiling: u64) -> u64 {
        if self.samples == 0 {
            ceiling
        } else {
            (self.srtt_x8 / 8 + self.rttvar_x4)
                .max(MIN_RTO)
                .min(ceiling)
        }
    }

    /// Ticks after which a clean first transmission should have been
    /// acknowledged: the smoothed round-trip, floored at [`MIN_RTO`].
    /// An on-schedule ack is processed *before* the retransmit sweep of
    /// its arrival tick, so a payload still unacked past this horizon
    /// is genuinely suspicious. Tighter than [`RttEstimator::rto`] (no
    /// variance cushion) — used only to pick early-retransmit riders
    /// for envelopes already being emitted, where a wrong guess costs a
    /// duplicate payload rather than a wire envelope. Links with no
    /// samples fall back to the full timeout ceiling.
    pub fn ack_horizon(&self, ceiling: u64) -> u64 {
        if self.samples == 0 {
            ceiling
        } else {
            (self.srtt_x8 / 8).max(MIN_RTO).min(ceiling)
        }
    }
}

/// One in-flight message awaiting acknowledgement.
#[derive(Debug, Clone)]
struct PendingMsg {
    seq: u64,
    body: Body,
    /// Tick of the original transmission, for RTT sampling.
    sent_at: u64,
    /// Tick at which the next retransmission fires.
    next_retry: u64,
    /// Timer-driven retransmissions performed so far.
    attempts: u32,
    /// Nack-triggered fast retransmissions performed so far — bounded
    /// by the same policy budget as the timer path.
    nack_retx: u32,
    /// Set by an inbound [`Body::Nack`] covering this sequence number:
    /// the tick the request landed. The repair goes out once the link's
    /// emission delay passes instead of waiting out the timer.
    fast_retx: Option<u64>,
}

/// Reliability state of one directed peer link.
#[derive(Debug, Default)]
struct ReliableLink {
    /// Next outbound sequence number (1-based).
    next_seq: u64,
    /// Outbound messages not yet covered by a cumulative or selective
    /// ack.
    unacked: Vec<PendingMsg>,
    /// Highest sequence number received in order from the peer; every
    /// `seq <= recv_cum` has been released to the agent.
    recv_cum: u64,
    /// Out-of-order arrivals buffered until the gap closes. Its keys
    /// are also the source of the selective-ack ranges.
    reorder: BTreeMap<u64, Body>,
    /// `true` when the peer has sent us something since our last ack —
    /// piggybacked on the next outbound seal, or flushed as a
    /// standalone [`Body::Ack`] when nothing outbound is pending.
    owe_ack: bool,
    /// A gap repair request to flush on the next tick.
    owe_nack: Option<(u64, u64)>,
    /// Highest gap start already nacked — the storm suppressor: the
    /// same missing range is requested once, and the peer's retransmit
    /// timer covers a lost nack.
    last_nack_start: u64,
    /// Round-trip estimate feeding the adaptive retransmit timeout.
    rtt: RttEstimator,
}

impl ReliableLink {
    /// Two-tick repair gather window, armed once the link has measured
    /// a round trip: a due repair waits two extra ticks so losses from
    /// adjacent rounds (and early-retransmit riders) coalesce into
    /// the same envelope. Links with no samples keep the exact classic
    /// emission schedule, so the no-sample endpoint still behaves like
    /// the fixed-backoff v3 layer tick for tick.
    fn emission_delay(&self) -> u64 {
        if self.rtt.samples() > 0 {
            2
        } else {
            0
        }
    }
}

/// The per-agent endpoint of the reliable sublayer: one
/// `ReliableLink` per peer plus suspicion state and metrics.
#[derive(Debug)]
pub struct ReliableEndpoint {
    me: usize,
    n: usize,
    policy: RetryPolicy,
    links: Vec<ReliableLink>,
    /// `suspected[p]`: the retry budget toward `p` is exhausted; no
    /// further protocol traffic is sent to `p`.
    suspected: Vec<bool>,
    /// `true` (the default) enables RTT-adaptive timeouts, selective
    /// acks, the nack fast path and coalesced repair; `false` pins the
    /// v3 fixed-backoff per-payload behaviour.
    adaptive: bool,
    metrics: MetricsSnapshot,
}

impl ReliableEndpoint {
    /// Creates the adaptive endpoint for agent `me` of `n`.
    pub fn new(me: usize, n: usize, policy: RetryPolicy) -> Self {
        ReliableEndpoint {
            me,
            n,
            policy,
            links: (0..n).map(|_| ReliableLink::default()).collect(),
            suspected: vec![false; n],
            adaptive: true,
            metrics: MetricsSnapshot::default(),
        }
    }

    /// Switches the endpoint to the classic v3 recovery behaviour:
    /// fixed `base_timeout << attempts` backoff, cumulative acks only,
    /// per-payload retransmission. The baseline arm of the bench's
    /// before/after recovery comparison.
    pub fn classic(mut self) -> Self {
        self.adaptive = false;
        self
    }

    /// Which peers this endpoint has given up on.
    pub fn suspected(&self) -> &[bool] {
        &self.suspected
    }

    /// The endpoint's metrics: `retransmissions` (wire envelopes),
    /// `repair_payloads` (payload copies inside repair envelopes),
    /// `acks_sent`, `nacks_sent`, `sack_ranges`, `rtt_samples`,
    /// `duplicate_deliveries`, `suppressed_retransmits`,
    /// `suppressed_sends` and `suspect_dead`, labelled per
    /// (agent, peer) and — where the runner supplies it — the agent's
    /// phase at the time.
    pub fn metrics(&self) -> &MetricsSnapshot {
        &self.metrics
    }

    /// `true` when no outbound message is awaiting an ack and no ack or
    /// nack is owed — the endpoint's contribution to run quiescence.
    pub fn is_settled(&self) -> bool {
        self.links
            .iter()
            .all(|l| l.unacked.is_empty() && !l.owe_ack && l.owe_nack.is_none())
    }

    /// The earliest tick at which [`ReliableEndpoint::tick`] would emit
    /// control traffic: the minimum `next_retry` over unacked envelopes
    /// on non-suspected links (retransmission or, once the budget is
    /// spent, the suspicion that clears the link), each shifted by the
    /// link's one-tick gather window and floored by any pending
    /// nack-triggered fast retransmission, or `Some(0)` — "immediately"
    /// — when a standalone ack or a gap nack is owed (the scheduler
    /// clamps to the current tick). `None` when the endpoint is settled toward
    /// every peer: ticking it before `next_timer()` is then provably a
    /// no-op, which is what lets the event-driven scheduler register
    /// retransmission timers as future events instead of rediscovering
    /// them by polling (see `docs/scheduler.md`).
    pub fn next_timer(&self) -> Option<u64> {
        // Owed acks and nacks flush on the very next tick, even toward
        // suspected peers.
        if self
            .links
            .iter()
            .any(|link| link.owe_ack || link.owe_nack.is_some())
        {
            return Some(0);
        }
        // Read-only inspection: every timer surveyed here was scheduled
        // by machinery already bounded by the `RetryPolicy` budget, so
        // reporting the minimum adds no retransmission of its own.
        self.links
            .iter()
            .enumerate()
            .filter(|(peer, _)| !self.suspected[*peer])
            .flat_map(|(_, link)| {
                let delay = link.emission_delay();
                link.unacked.iter().map(move |pending| {
                    let due = match pending.fast_retx {
                        Some(at) => at.min(pending.next_retry),
                        None => pending.next_retry,
                    };
                    due + delay
                })
            })
            .min()
    }

    /// Wraps one tick's protocol output into sealed per-peer unicasts.
    /// Broadcasts expand to one envelope per non-suspected peer (the
    /// transport-level `n − 1` cost model, minus the dead); unicasts to
    /// suspected peers are suppressed and counted. Piggybacks the
    /// cumulative ack for each destination and registers every envelope
    /// for retransmission.
    pub fn seal_outgoing(
        &mut self,
        now: u64,
        phase: &'static str,
        outgoing: Vec<(Recipient, Body)>,
    ) -> Vec<(NodeId, Body)> {
        let mut wire = Vec::new();
        for (recipient, body) in outgoing {
            match recipient {
                Recipient::Unicast(to) => {
                    self.seal_one(now, phase, to.0, body, &mut wire);
                }
                Recipient::Broadcast => {
                    for to in 0..self.n {
                        if to != self.me {
                            self.seal_one(now, phase, to, body.clone(), &mut wire);
                        }
                    }
                }
            }
        }
        wire
    }

    fn seal_one(
        &mut self,
        now: u64,
        phase: &'static str,
        to: usize,
        body: Body,
        wire: &mut Vec<(NodeId, Body)>,
    ) {
        if self.suspected[to] {
            let key = Key::named("suppressed_sends")
                .phase(phase)
                .agent(self.me as u32)
                .peer(to as u32);
            self.metrics.incr(key, 1);
            return;
        }
        let adaptive = self.adaptive;
        let link = &mut self.links[to];
        link.next_seq += 1;
        let seq = link.next_seq;
        // The envelope carries the cumulative ack — but while a gap
        // holds arrivals in the reorder buffer, the adaptive endpoint
        // keeps the standalone ack owed so its selective ranges (which
        // a sealed envelope cannot carry) still reach the peer.
        if !adaptive || link.reorder.is_empty() {
            link.owe_ack = false;
        }
        let rto = if adaptive {
            link.rtt.rto(self.policy.base_timeout)
        } else {
            self.policy.base_timeout
        };
        link.unacked.push(PendingMsg {
            seq,
            body: body.clone(),
            sent_at: now,
            next_retry: now + rto,
            attempts: 0,
            nack_retx: 0,
            fast_retx: None,
        });
        // Repair-on-seal: a fresh envelope to this peer is going on the
        // wire regardless, so any payload whose retransmission is
        // already due (timer lapsed or nack-marked) rides inside it
        // instead of costing a standalone repair envelope at this
        // tick's sweep. Bookkeeping matches the sweep exactly — timer
        // rides burn an attempt, nack rides don't — except the final
        // budgeted attempt, which stays with the sweep so it keeps its
        // two-copy anti-resonance echo and the suspicion handoff (L8:
        // the ride gate below is the same per-message budget).
        let mut due: Vec<(u64, Body)> = Vec::new();
        if adaptive {
            let budget = self.policy.budget;
            for pending in link.unacked.iter_mut() {
                if pending.seq == seq {
                    continue;
                }
                let overdue = pending.next_retry <= now;
                let fast_due = pending.fast_retx.is_some();
                if !overdue && !fast_due {
                    continue;
                }
                if overdue && pending.attempts + 1 >= budget {
                    continue;
                }
                if overdue {
                    pending.next_retry = now + (rto << pending.attempts);
                    pending.attempts += 1;
                } else {
                    pending.next_retry = now + (rto << pending.attempts);
                }
                pending.fast_retx = None;
                due.push((pending.seq, pending.body.clone()));
            }
        }
        if due.is_empty() {
            wire.push((
                NodeId(to),
                Body::Sealed {
                    seq,
                    ack: link.recv_cum,
                    inner: Box::new(body),
                },
            ));
        } else {
            // The merged envelope replaces an unsealed send that was
            // leaving anyway, so it adds no recovery envelope to the
            // wire — only the payload copies are recovery overhead.
            let payloads = due.len() as u64;
            due.push((seq, body));
            due.sort_by_key(|(s, _)| *s);
            wire.push((
                NodeId(to),
                Body::Repair {
                    ack: link.recv_cum,
                    items: due,
                },
            ));
            let key = Key::named("repair_payloads")
                .phase(phase)
                .agent(self.me as u32)
                .peer(to as u32);
            self.metrics.incr(key, payloads);
        }
    }

    /// Unseals one tick's arrivals: applies piggybacked, standalone and
    /// selective acks, deduplicates, buffers out-of-order envelopes
    /// (scheduling a gap nack on the adaptive endpoint), honours repair
    /// envelopes and nack requests, and returns the in-order protocol
    /// messages the agent should see. `now` is the current scheduler
    /// tick, closing ack round-trips for the RTT estimator. Non-sealed
    /// protocol bodies pass through untouched (they cannot occur in
    /// recovery mode, but the contract stays total).
    pub fn process_inbound(
        &mut self,
        now: u64,
        inbox: Vec<Delivered<Body>>,
    ) -> Vec<Delivered<Body>> {
        let mut released = Vec::new();
        for msg in inbox {
            let from = msg.from.0;
            match msg.payload {
                Body::Sealed { seq, ack, inner } => {
                    self.apply_ack(from, ack, &[], now);
                    self.accept_payload(from, seq, *inner, msg.broadcast, &mut released);
                    self.schedule_gap_nack(from);
                }
                Body::Repair { ack, items } => {
                    self.apply_ack(from, ack, &[], now);
                    for (seq, body) in items {
                        self.accept_payload(from, seq, body, msg.broadcast, &mut released);
                    }
                    // No gap nack off a repair: the peer just flushed
                    // everything it owes, so a still-open gap means
                    // in-flight traffic, not loss.
                }
                Body::Ack { ack, sack } => {
                    self.apply_ack(from, ack, &sack, now);
                }
                Body::Nack { lo, hi } => {
                    let budget = self.policy.budget;
                    let link = &mut self.links[from];
                    // Nack-triggered fast retransmissions respect the
                    // same per-message budget as the timer path (L8):
                    // a nack beyond the budget is ignored and the
                    // timer/suspicion machinery takes over.
                    for pending in &mut link.unacked {
                        if (lo..=hi).contains(&pending.seq) && pending.nack_retx < budget {
                            pending.nack_retx += 1;
                            pending.fast_retx = Some(now);
                        }
                    }
                }
                Body::SuspectDead { peer } => {
                    // Observability only: the exclusion vote reads each
                    // endpoint's own suspicion state, never this notice.
                    let key = Key::named("suspect_notices")
                        .agent(self.me as u32)
                        .peer(peer as u32);
                    self.metrics.incr(key, 1);
                }
                other => released.push(Delivered {
                    from: msg.from,
                    broadcast: msg.broadcast,
                    payload: other,
                }),
            }
        }
        released
    }

    /// Sequence-accepts one carried payload from `from`: dedup, in-order
    /// release with reorder-buffer drain, or out-of-order buffering.
    fn accept_payload(
        &mut self,
        from: usize,
        seq: u64,
        body: Body,
        broadcast: bool,
        released: &mut Vec<Delivered<Body>>,
    ) {
        let link = &mut self.links[from];
        link.owe_ack = true;
        if seq <= link.recv_cum {
            let key = Key::named("duplicate_deliveries")
                .agent(self.me as u32)
                .peer(from as u32);
            self.metrics.incr(key, 1);
            return;
        }
        if seq == link.recv_cum + 1 {
            link.recv_cum = seq;
            released.push(Delivered {
                from: NodeId(from),
                broadcast,
                payload: body,
            });
            // The gap may have closed: drain the reorder buffer while
            // it stays consecutive.
            while let Some(next) = link.reorder.remove(&(link.recv_cum + 1)) {
                link.recv_cum += 1;
                released.push(Delivered {
                    from: NodeId(from),
                    broadcast,
                    payload: next,
                });
            }
        } else {
            // Out of order: hold until the gap closes. A duplicate of a
            // buffered seq is idempotent.
            link.reorder.entry(seq).or_insert(body);
        }
    }

    /// After an out-of-order sealed arrival, schedules one nack
    /// spanning every missing sequence number the receiver can prove
    /// lost: from the first gap up to just below the highest buffered
    /// arrival. Buffered seqs inside the span are retired at the sender
    /// by the selective ack travelling alongside, so the answering
    /// repair carries exactly the missing payloads — one envelope per
    /// loss event, however many gaps the event tore. Suppressed when
    /// that gap start was already requested (the monotone watermark
    /// that bounds nack storms to one request per gap).
    fn schedule_gap_nack(&mut self, from: usize) {
        if !self.adaptive {
            return;
        }
        let link = &mut self.links[from];
        let Some(&buffered) = link.reorder.keys().next_back() else {
            return;
        };
        let lo = link.recv_cum + 1;
        let hi = buffered - 1;
        if lo > link.last_nack_start {
            link.last_nack_start = lo;
            link.owe_nack = Some((lo, hi));
        }
    }

    /// Retires pending messages covered by a cumulative ack (feeding
    /// clean first-transmission round-trips to the RTT estimator) or by
    /// a selective-ack range (counted as suppressed retransmissions:
    /// the peer holds them buffered, so re-sending them would only
    /// manufacture duplicates).
    fn apply_ack(&mut self, from: usize, ack: u64, sack: &[(u64, u64)], now: u64) {
        let adaptive = self.adaptive;
        let link = &mut self.links[from];
        let mut samples = 0u64;
        let mut suppressed = 0u64;
        let mut kept = Vec::with_capacity(link.unacked.len());
        for pending in link.unacked.drain(..) {
            if pending.seq <= ack {
                // Karn's rule: only messages that spent none of their
                // retry budget (no timer or nack retransmission) yield
                // an unambiguous round-trip.
                let spent_budget = pending.attempts > 0 || pending.nack_retx > 0;
                if adaptive && !spent_budget {
                    link.rtt.observe(now.saturating_sub(pending.sent_at));
                    samples += 1;
                }
            } else if sack
                .iter()
                .any(|&(lo, hi)| (lo..=hi).contains(&pending.seq))
            {
                suppressed += 1;
            } else {
                kept.push(pending);
            }
        }
        link.unacked = kept;
        if samples > 0 {
            let key = Key::named("rtt_samples")
                .agent(self.me as u32)
                .peer(from as u32);
            self.metrics.incr(key, samples);
        }
        if suppressed > 0 {
            let key = Key::named("suppressed_retransmits")
                .agent(self.me as u32)
                .peer(from as u32);
            self.metrics.incr(key, suppressed);
        }
    }

    /// Advances the retransmit timers one tick and flushes owed control
    /// traffic. Returns what to transmit: coalesced [`Body::Repair`]
    /// envelopes for overdue or nack-requested messages (adaptive) or
    /// per-payload [`Body::Sealed`] retransmissions (classic), gap
    /// [`Body::Nack`]s, standalone [`Body::Ack`]s for peers with
    /// nothing outbound to piggyback on, and a fire-and-forget
    /// [`Body::SuspectDead`] broadcast when a peer's budget exhausts
    /// this tick.
    pub fn tick(&mut self, now: u64, phase: &'static str) -> Vec<(Recipient, Body)> {
        let budget = self.policy.budget;
        let mut out = Vec::new();
        for peer in 0..self.n {
            if peer == self.me {
                continue;
            }
            // Both sweeps bound every retransmission by `budget` (L8).
            if !self.suspected[peer] {
                if self.adaptive {
                    self.tick_adaptive(now, phase, peer, budget, &mut out);
                } else {
                    self.tick_classic(now, phase, peer, budget, &mut out);
                }
            }
            // Owed nacks and acks flush even toward suspected peers:
            // neither is ever acked back, so each costs one message and
            // helps the other side settle.
            let link = &mut self.links[peer];
            if let Some((lo, hi)) = link.owe_nack.take() {
                out.push((Recipient::Unicast(NodeId(peer)), Body::Nack { lo, hi }));
                let key = Key::named("nacks_sent")
                    .agent(self.me as u32)
                    .peer(peer as u32);
                self.metrics.incr(key, 1);
            }
            let link = &mut self.links[peer];
            if link.owe_ack {
                link.owe_ack = false;
                let sack = if self.adaptive {
                    sack_ranges(&link.reorder)
                } else {
                    Vec::new()
                };
                // Adaptive ack echo: two back-to-back copies occupy
                // consecutive enqueue slots, which a periodic drop
                // schedule can never both claim — so acknowledgments
                // survive the deterministic loss plans that would
                // otherwise convert delivered data into timeout-driven
                // duplicate storms.
                let copies = if self.adaptive { 2 } else { 1 };
                let ranges = sack.len() as u64;
                for _ in 0..copies {
                    out.push((
                        Recipient::Unicast(NodeId(peer)),
                        Body::Ack {
                            ack: link.recv_cum,
                            sack: sack.clone(),
                        },
                    ));
                }
                let key = Key::named("acks_sent")
                    .agent(self.me as u32)
                    .peer(peer as u32);
                self.metrics.incr(key, copies);
                if ranges > 0 {
                    let key = Key::named("sack_ranges")
                        .agent(self.me as u32)
                        .peer(peer as u32);
                    self.metrics.incr(key, ranges * copies);
                }
            }
        }
        out
    }

    /// The adaptive retransmit sweep for one peer: overdue and
    /// nack-requested messages coalesce into a single [`Body::Repair`]
    /// envelope, so one loss event costs one wire transmission however
    /// many payloads it claimed.
    fn tick_adaptive(
        &mut self,
        now: u64,
        phase: &'static str,
        peer: usize,
        budget: u32,
        out: &mut Vec<(Recipient, Body)>,
    ) {
        let link = &mut self.links[peer];
        let rto = link.rtt.rto(self.policy.base_timeout);
        let ack_horizon = link.rtt.ack_horizon(self.policy.base_timeout);
        let delay = link.emission_delay();
        let mut exhausted = false;
        let mut final_attempt = false;
        let mut items: Vec<(u64, Body)> = Vec::new();
        // Budget-bounded retransmit sweep: every pending message
        // retries at most `budget` times on the timer path, and the
        // nack fast path neither burns nor evades that budget — it
        // resends without advancing `attempts`, but marked messages
        // were already capped at `budget` nack retransmissions when the
        // nack arrived (L8).
        let mut riders: Vec<usize> = Vec::new();
        for (slot, pending) in link.unacked.iter_mut().enumerate() {
            let overdue = pending.next_retry + delay <= now;
            let fast_due = pending.fast_retx.is_some_and(|at| at + delay <= now);
            if !overdue && !fast_due {
                // Early-retransmit rider: the peer has had a full ack
                // round-trip for this payload and stayed silent — if a
                // repair envelope goes out anyway, ride along for free
                // instead of waiting to become a solo envelope later.
                if now >= pending.sent_at + ack_horizon {
                    riders.push(slot);
                }
                continue;
            }
            if overdue && pending.attempts >= budget {
                exhausted = true;
                break;
            }
            if overdue {
                if pending.attempts + 1 >= budget {
                    final_attempt = true;
                }
                pending.next_retry = now + (rto << pending.attempts);
                pending.attempts += 1;
            } else {
                // Fast path: reschedule the timer without burning an
                // attempt — the repair below is already on the wire.
                pending.next_retry = now + (rto << pending.attempts);
            }
            pending.fast_retx = None;
            items.push((pending.seq, pending.body.clone()));
        }
        if !exhausted && !items.is_empty() {
            // Riders join an envelope that was being emitted anyway;
            // like the nack fast path they neither burn nor evade the
            // attempt budget (L8) — their own timer keeps its schedule,
            // and a message that already spent its budget stays grounded.
            for slot in riders {
                let pending = &mut link.unacked[slot];
                if pending.attempts >= budget {
                    continue;
                }
                pending.next_retry = now + (rto << pending.attempts);
                // The ride answers any pending nack request too — an
                // armed fast retransmit would only duplicate it.
                pending.fast_retx = None;
                items.push((pending.seq, pending.body.clone()));
            }
            items.sort_by_key(|(seq, _)| *seq);
        }
        if exhausted {
            self.suspected[peer] = true;
            self.links[peer].unacked.clear();
            let key = Key::named("suspect_dead")
                .phase(phase)
                .agent(self.me as u32)
                .peer(peer as u32);
            self.metrics.incr(key, 1);
            out.push((Recipient::Broadcast, Body::SuspectDead { peer }));
        } else if !items.is_empty() {
            // The final budgeted attempt ships two back-to-back copies
            // of the repair envelope — the same anti-resonance echo the
            // classic sweep applies per payload.
            let copies: u64 = if final_attempt { 2 } else { 1 };
            let payloads = items.len() as u64;
            if link.reorder.is_empty() {
                link.owe_ack = false;
            }
            for _ in 0..copies {
                out.push((
                    Recipient::Unicast(NodeId(peer)),
                    Body::Repair {
                        ack: link.recv_cum,
                        items: items.clone(),
                    },
                ));
            }
            let key = Key::named("retransmissions")
                .phase(phase)
                .agent(self.me as u32)
                .peer(peer as u32);
            self.metrics.incr(key, copies);
            let key = Key::named("repair_payloads")
                .phase(phase)
                .agent(self.me as u32)
                .peer(peer as u32);
            self.metrics.incr(key, copies * payloads);
        }
    }

    /// The classic v3 sweep for one peer: each overdue payload is
    /// re-sealed and retransmitted individually on the fixed
    /// `base_timeout << attempts` backoff.
    fn tick_classic(
        &mut self,
        now: u64,
        phase: &'static str,
        peer: usize,
        budget: u32,
        out: &mut Vec<(Recipient, Body)>,
    ) {
        let mut exhausted = false;
        let link = &mut self.links[peer];
        // Budget-bounded retransmit sweep: every pending message
        // retries at most `budget` times (L8).
        for pending in &mut link.unacked {
            if pending.next_retry > now {
                continue;
            }
            if pending.attempts >= budget {
                exhausted = true;
                break;
            }
            // The final budgeted attempt ships two back-to-back copies:
            // consecutive enqueue slots can never both be multiples of
            // a drop period `k ≥ 2`, so a periodic loss schedule
            // phase-locked with the doubling backoff cannot kill every
            // attempt.
            let copies = if pending.attempts + 1 >= budget { 2 } else { 1 };
            for _ in 0..copies {
                out.push((
                    Recipient::Unicast(NodeId(peer)),
                    Body::Sealed {
                        seq: pending.seq,
                        ack: link.recv_cum,
                        inner: Box::new(pending.body.clone()),
                    },
                ));
            }
            link.owe_ack = false;
            pending.next_retry = now + (self.policy.base_timeout << pending.attempts);
            pending.attempts += 1;
            let key = Key::named("retransmissions")
                .phase(phase)
                .agent(self.me as u32)
                .peer(peer as u32);
            self.metrics.incr(key, copies);
        }
        if exhausted {
            self.suspected[peer] = true;
            self.links[peer].unacked.clear();
            let key = Key::named("suspect_dead")
                .phase(phase)
                .agent(self.me as u32)
                .peer(peer as u32);
            self.metrics.incr(key, 1);
            out.push((Recipient::Broadcast, Body::SuspectDead { peer }));
        }
    }
}

/// The selective-ack ranges for one reorder buffer: maximal runs of
/// consecutive buffered sequence numbers, lowest first, capped at
/// [`SACK_MAX_RANGES`] (overflow degrades to the cumulative-only
/// contract — correctness never depends on a sack).
fn sack_ranges(reorder: &BTreeMap<u64, Body>) -> Vec<(u64, u64)> {
    let mut ranges: Vec<(u64, u64)> = Vec::new();
    for &seq in reorder.keys() {
        match ranges.last_mut() {
            Some((_, hi)) if *hi + 1 == seq => *hi = seq,
            _ => {
                if ranges.len() == SACK_MAX_RANGES {
                    break;
                }
                ranges.push((seq, seq));
            }
        }
    }
    ranges
}

/// The deterministic exclusion round the runner executes after a
/// recovery-mode run: agent `p` is excluded when a *strict majority* of
/// the non-excluded voters (everyone but `p` itself) suspect it. Each
/// fixpoint round excludes only the candidate(s) carrying the *most*
/// votes, so a crashed agent — suspected by every survivor, and whose
/// own endpoint suspects everybody — falls first, and its blanket
/// suspicions are discarded before they can drag a survivor down with
/// it. Returns the excluded agent indices in ascending order.
pub fn exclusion_vote(endpoints: &[ReliableEndpoint]) -> Vec<usize> {
    let n = endpoints.len();
    let mut excluded = vec![false; n];
    loop {
        let mut candidates: Vec<(usize, usize)> = Vec::new();
        for p in 0..n {
            if excluded[p] {
                continue;
            }
            let voters: Vec<usize> = (0..n).filter(|&v| v != p && !excluded[v]).collect();
            let votes = voters
                .iter()
                .filter(|&&v| endpoints[v].suspected().get(p).copied().unwrap_or(false))
                .count();
            if 2 * votes > voters.len() {
                candidates.push((votes, p));
            }
        }
        let Some(&(most, _)) = candidates.iter().max() else {
            break;
        };
        for &(votes, p) in &candidates {
            if votes == most {
                excluded[p] = true;
            }
        }
    }
    (0..n).filter(|&p| excluded[p]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delivered(from: usize, payload: Body) -> Delivered<Body> {
        Delivered {
            from: NodeId(from),
            broadcast: false,
            payload,
        }
    }

    fn ack_body(task: usize) -> Body {
        Body::Disclose {
            task,
            f_values: vec![1, 2],
        }
    }

    fn seal(seq: u64, ack: u64, task: usize) -> Body {
        Body::Sealed {
            seq,
            ack,
            inner: Box::new(ack_body(task)),
        }
    }

    #[test]
    fn sealing_stamps_consecutive_sequence_numbers_per_link() {
        let mut ep = ReliableEndpoint::new(0, 3, RetryPolicy::default());
        let wire = ep.seal_outgoing(
            0,
            "bidding",
            vec![
                (Recipient::Unicast(NodeId(1)), ack_body(0)),
                (Recipient::Broadcast, ack_body(1)),
            ],
        );
        // Unicast to 1, then broadcast to 1 and 2.
        assert_eq!(wire.len(), 3);
        let seqs: Vec<(usize, u64)> = wire
            .iter()
            .map(|(to, b)| match b {
                Body::Sealed { seq, .. } => (to.0, *seq),
                other => panic!("unsealed {}", other.kind()),
            })
            .collect();
        assert_eq!(seqs, vec![(1, 1), (1, 2), (2, 1)]);
    }

    #[test]
    fn inbound_envelopes_release_in_order_and_dedup() {
        let mut ep = ReliableEndpoint::new(0, 2, RetryPolicy::default());
        // Arrivals out of order: 2 buffers, 1 releases both, dup of 1
        // is swallowed.
        let released = ep.process_inbound(0, vec![delivered(1, seal(2, 0, 22))]);
        assert!(released.is_empty(), "gap: held for reordering");
        let released = ep.process_inbound(
            0,
            vec![delivered(1, seal(1, 0, 11)), delivered(1, seal(1, 0, 11))],
        );
        let tasks: Vec<Option<usize>> = released.iter().map(|d| d.payload.task()).collect();
        assert_eq!(tasks, vec![Some(11), Some(22)]);
        assert_eq!(
            ep.metrics()
                .counter(&Key::named("duplicate_deliveries").agent(0).peer(1)),
            1
        );
    }

    #[test]
    fn unacked_messages_retransmit_with_backoff_then_suspect() {
        let policy = RetryPolicy {
            base_timeout: 2,
            budget: 2,
        };
        let mut ep = ReliableEndpoint::new(0, 2, policy);
        let _ = ep.seal_outgoing(
            0,
            "bidding",
            vec![(Recipient::Unicast(NodeId(1)), ack_body(0))],
        );
        // No acks ever arrive, so the link has no RTT samples and the
        // adaptive timeout equals base_timeout — the suspicion timeline
        // is identical to the classic schedule: attempt 0 fires at tick
        // 2, the final attempt at tick 4 ships two back-to-back repair
        // copies (the anti-resonance echo), then the budget is
        // exhausted at the next overdue tick — worst_case_repair() =
        // 2·2² = 8.
        let mut retransmits = 0;
        let mut suspected_at = None;
        for now in 1..=20 {
            for (_, body) in ep.tick(now, "commitments") {
                match body {
                    Body::Repair { items, .. } => {
                        assert_eq!(items.len(), 1);
                        retransmits += 1;
                    }
                    Body::SuspectDead { peer } => {
                        assert_eq!(peer, 1);
                        suspected_at.get_or_insert(now);
                    }
                    other => panic!("unexpected {}", other.kind()),
                }
            }
        }
        assert_eq!(
            retransmits, 3,
            "budget bounds the sweep: 1 + the doubled final attempt"
        );
        assert_eq!(suspected_at, Some(policy.worst_case_repair()));
        assert!(ep.suspected()[1]);
        assert!(ep.is_settled(), "suspicion clears the link");
        assert_eq!(ep.metrics().counter_total("retransmissions"), 3);
        assert_eq!(ep.metrics().counter_total("repair_payloads"), 3);
        // Further sends to the suspected peer are suppressed.
        let wire = ep.seal_outgoing(15, "resolution", vec![(Recipient::Broadcast, ack_body(1))]);
        assert!(wire.is_empty());
        assert_eq!(ep.metrics().counter_total("suppressed_sends"), 1);
    }

    #[test]
    fn classic_mode_reproduces_the_v3_per_payload_schedule() {
        let policy = RetryPolicy {
            base_timeout: 2,
            budget: 2,
        };
        let mut ep = ReliableEndpoint::new(0, 2, policy).classic();
        let _ = ep.seal_outgoing(
            0,
            "bidding",
            vec![(Recipient::Unicast(NodeId(1)), ack_body(0))],
        );
        let mut retransmits = 0;
        let mut suspected_at = None;
        for now in 1..=20 {
            for (_, body) in ep.tick(now, "commitments") {
                match body {
                    Body::Sealed { seq: 1, .. } => retransmits += 1,
                    Body::SuspectDead { peer } => {
                        assert_eq!(peer, 1);
                        suspected_at.get_or_insert(now);
                    }
                    other => panic!("unexpected {}", other.kind()),
                }
            }
        }
        assert_eq!(retransmits, 3, "1 + the doubled final attempt");
        assert_eq!(suspected_at, Some(policy.worst_case_repair()));
        assert_eq!(ep.metrics().counter_total("retransmissions"), 3);
        assert_eq!(
            ep.metrics().counter_total("repair_payloads"),
            0,
            "classic mode never coalesces"
        );
    }

    #[test]
    fn acks_stop_retransmission_and_standalone_acks_flush() {
        let mut ep = ReliableEndpoint::new(0, 2, RetryPolicy::default());
        let _ = ep.seal_outgoing(
            0,
            "bidding",
            vec![(Recipient::Unicast(NodeId(1)), ack_body(0))],
        );
        assert!(!ep.is_settled());
        // Peer acks seq 1 and sends its own envelope.
        let released = ep.process_inbound(
            1,
            vec![delivered(
                1,
                Body::Sealed {
                    seq: 1,
                    ack: 1,
                    inner: Box::new(ack_body(9)),
                },
            )],
        );
        assert_eq!(released.len(), 1);
        assert!(!ep.is_settled(), "an ack is owed");
        assert_eq!(
            ep.metrics()
                .counter(&Key::named("rtt_samples").agent(0).peer(1)),
            1,
            "the clean round-trip fed the estimator"
        );
        // No outbound traffic: the owed ack flushes standalone, echoed
        // twice (consecutive enqueue slots defeat periodic ack loss).
        let control = ep.tick(1, "commitments");
        assert_eq!(control.len(), 2);
        for (_, body) in &control {
            assert!(matches!(body, Body::Ack { ack: 1, sack } if sack.is_empty()));
        }
        assert!(ep.is_settled());
        assert_eq!(ep.metrics().counter_total("acks_sent"), 2);
        // Nothing further: no retransmissions, no ack storms.
        for now in 2..40 {
            assert!(ep.tick(now, "commitments").is_empty());
        }
    }

    #[test]
    fn rtt_estimator_tracks_samples_and_clamps_the_timeout() {
        let mut est = RttEstimator::default();
        assert_eq!(est.rto(8), 8, "no samples: the ceiling (classic base)");
        est.observe(2);
        // First sample: srtt = 2, rttvar = 1 → rto = 2 + 4·1 = 6.
        assert_eq!(est.rto(8), 6);
        for _ in 0..20 {
            est.observe(2);
        }
        let converged = est.rto(8);
        assert_eq!(
            converged, MIN_RTO,
            "jitter-free samples decay the variance to zero, so the \
             floor catches the timeout; got {converged}"
        );
        let mut slow = RttEstimator::default();
        slow.observe(10);
        assert_eq!(slow.rto(3), 3, "ceiling clamps from above");
        let mut tiny = RttEstimator::default();
        tiny.observe(0);
        assert_eq!(tiny.rto(8), MIN_RTO, "floor clamps from below");
        assert_eq!(est.samples(), 21);
    }

    #[test]
    fn selective_acks_retire_tail_messages_without_retransmission() {
        let mut ep = ReliableEndpoint::new(0, 2, RetryPolicy::default());
        let _ = ep.seal_outgoing(
            0,
            "bidding",
            vec![
                (Recipient::Unicast(NodeId(1)), ack_body(0)),
                (Recipient::Unicast(NodeId(1)), ack_body(1)),
                (Recipient::Unicast(NodeId(1)), ack_body(2)),
            ],
        );
        // Seq 1 was lost; the peer holds 2..=3 buffered and says so.
        let _ = ep.process_inbound(
            2,
            vec![delivered(
                1,
                Body::Ack {
                    ack: 0,
                    sack: vec![(2, 3)],
                },
            )],
        );
        assert_eq!(
            ep.metrics()
                .counter(&Key::named("suppressed_retransmits").agent(0).peer(1)),
            2
        );
        // Only seq 1 is still pending: the repair at its timeout
        // carries exactly one payload.
        let out = ep.tick(4, "bidding");
        assert_eq!(out.len(), 1);
        match &out[0].1 {
            Body::Repair { items, .. } => {
                assert_eq!(items.len(), 1);
                assert_eq!(items[0].0, 1);
            }
            other => panic!("unexpected {}", other.kind()),
        }
    }

    #[test]
    fn sack_saturation_falls_back_to_cumulative_only() {
        let mut ep = ReliableEndpoint::new(0, 2, RetryPolicy::default());
        // Six disjoint out-of-order singletons: 3, 5, 7, 9, 11, 13.
        for seq in [3u64, 5, 7, 9, 11, 13] {
            let _ = ep.process_inbound(0, vec![delivered(1, seal(seq, 0, seq as usize))]);
        }
        let control = ep.tick(1, "bidding");
        let acks: Vec<&Body> = control
            .iter()
            .map(|(_, b)| b)
            .filter(|b| matches!(b, Body::Ack { .. }))
            .collect();
        assert!(!acks.is_empty());
        for body in acks {
            let Body::Ack { ack, sack } = body else {
                unreachable!()
            };
            assert_eq!(*ack, 0);
            assert_eq!(
                sack,
                &vec![(3, 3), (5, 5), (7, 7), (9, 9)],
                "the range set truncates at SACK_MAX_RANGES, lowest first"
            );
        }
        // The buffered-but-unadvertised tail (11, 13) stays covered by
        // the cumulative contract: once the gaps close everything
        // releases in order.
        let released = ep.process_inbound(
            2,
            (1..=13u64)
                .map(|seq| delivered(1, seal(seq, 0, seq as usize)))
                .collect(),
        );
        let tasks: Vec<Option<usize>> = released.iter().map(|d| d.payload.task()).collect();
        assert_eq!(tasks, (1..=13).map(Some).collect::<Vec<_>>());
    }

    #[test]
    fn gap_detection_nacks_the_exact_missing_range_once() {
        let mut ep = ReliableEndpoint::new(0, 2, RetryPolicy::default());
        // Seqs 1-2 lost, 3 arrives: the gap is exactly 1..=2.
        let _ = ep.process_inbound(0, vec![delivered(1, seal(3, 0, 33))]);
        let control = ep.tick(0, "bidding");
        let nacks: Vec<&Body> = control
            .iter()
            .map(|(_, b)| b)
            .filter(|b| matches!(b, Body::Nack { .. }))
            .collect();
        assert_eq!(nacks.len(), 1);
        assert!(matches!(nacks[0], Body::Nack { lo: 1, hi: 2 }));
        assert_eq!(ep.metrics().counter_total("nacks_sent"), 1);
        // Another arrival beyond the same gap must not nack again: the
        // watermark suppresses the storm.
        let _ = ep.process_inbound(1, vec![delivered(1, seal(4, 0, 44))]);
        let control = ep.tick(1, "bidding");
        assert!(
            !control.iter().any(|(_, b)| matches!(b, Body::Nack { .. })),
            "same gap start: no second nack"
        );
        assert_eq!(ep.metrics().counter_total("nacks_sent"), 1);
    }

    #[test]
    fn nack_triggers_coalesced_fast_retransmit_within_budget() {
        let policy = RetryPolicy {
            base_timeout: 16,
            budget: 3,
        };
        let mut ep = ReliableEndpoint::new(0, 2, policy);
        let _ = ep.seal_outgoing(
            0,
            "bidding",
            vec![
                (Recipient::Unicast(NodeId(1)), ack_body(0)),
                (Recipient::Unicast(NodeId(1)), ack_body(1)),
                (Recipient::Unicast(NodeId(1)), ack_body(2)),
            ],
        );
        // The peer requests 1..=2 — long before the 16-tick timer.
        let _ = ep.process_inbound(1, vec![delivered(1, Body::Nack { lo: 1, hi: 2 })]);
        assert_eq!(
            ep.next_timer(),
            Some(1),
            "fast retransmit is due at the current tick"
        );
        let out = ep.tick(1, "bidding");
        assert_eq!(out.len(), 1, "one repair envelope for the whole gap");
        match &out[0].1 {
            Body::Repair { items, .. } => {
                let seqs: Vec<u64> = items.iter().map(|(s, _)| *s).collect();
                assert_eq!(seqs, vec![1, 2], "exactly the nacked range, in order");
            }
            other => panic!("unexpected {}", other.kind()),
        }
        assert_eq!(ep.metrics().counter_total("retransmissions"), 1);
        assert_eq!(ep.metrics().counter_total("repair_payloads"), 2);
        // Nack retransmissions are budgeted: after `budget` requests
        // per message the fast path goes quiet and the timer machinery
        // is the only recourse.
        for round in 0..10u64 {
            let _ = ep.process_inbound(2 + round, vec![delivered(1, Body::Nack { lo: 1, hi: 2 })]);
            let _ = ep.tick(2 + round, "bidding");
        }
        let fast_total = ep.metrics().counter_total("repair_payloads");
        assert_eq!(
            fast_total,
            2 * u64::from(policy.budget),
            "each payload fast-retransmits at most budget times"
        );
    }

    #[test]
    fn repair_envelopes_release_like_the_sealed_stream() {
        let mut ep = ReliableEndpoint::new(0, 2, RetryPolicy::default());
        let _ = ep.process_inbound(0, vec![delivered(1, seal(4, 0, 44))]);
        // One repair closes the gap; already-buffered 4 drains behind
        // it, and a replayed item counts as a duplicate.
        let released = ep.process_inbound(
            1,
            vec![delivered(
                1,
                Body::Repair {
                    ack: 0,
                    items: vec![(1, ack_body(11)), (2, ack_body(22)), (3, ack_body(33))],
                },
            )],
        );
        let tasks: Vec<Option<usize>> = released.iter().map(|d| d.payload.task()).collect();
        assert_eq!(tasks, vec![Some(11), Some(22), Some(33), Some(44)]);
        let released = ep.process_inbound(
            2,
            vec![delivered(
                1,
                Body::Repair {
                    ack: 0,
                    items: vec![(3, ack_body(33))],
                },
            )],
        );
        assert!(released.is_empty());
        assert_eq!(ep.metrics().counter_total("duplicate_deliveries"), 1);
    }

    /// `next_timer` must bracket exactly the ticks on which `tick`
    /// emits something: skipping every tick before it, then ticking at
    /// it, reproduces the poll-every-tick behaviour.
    #[test]
    fn next_timer_predicts_every_emitting_tick() {
        let policy = RetryPolicy {
            base_timeout: 2,
            budget: 2,
        };
        let mut ep = ReliableEndpoint::new(0, 2, policy);
        assert_eq!(ep.next_timer(), None);
        let _ = ep.seal_outgoing(
            0,
            "bidding",
            vec![(Recipient::Unicast(NodeId(1)), ack_body(0))],
        );
        assert_eq!(ep.next_timer(), Some(2), "first retry at base_timeout");
        // Event-style drive: jump straight to each promised tick.
        let mut emitted_at = Vec::new();
        while let Some(due) = ep.next_timer() {
            let out = ep.tick(due, "commitments");
            assert!(
                !out.is_empty(),
                "next_timer promised activity at {due} but tick was empty"
            );
            emitted_at.push(due);
            if ep.suspected()[1] {
                break;
            }
        }
        // Poll-every-tick oracle over the same policy.
        let mut oracle = ReliableEndpoint::new(0, 2, policy);
        let _ = oracle.seal_outgoing(
            0,
            "bidding",
            vec![(Recipient::Unicast(NodeId(1)), ack_body(0))],
        );
        let mut oracle_emitted = Vec::new();
        for now in 1..=20 {
            if !oracle.tick(now, "commitments").is_empty() {
                oracle_emitted.push(now);
            }
        }
        assert_eq!(emitted_at, oracle_emitted);
        assert_eq!(ep.next_timer(), None, "suspicion cleared the link");
        // An owed ack is due immediately.
        let released = ep.process_inbound(8, vec![delivered(1, seal(1, 0, 3))]);
        assert_eq!(released.len(), 1);
        assert_eq!(ep.next_timer(), Some(0));
    }

    /// Builds endpoints where each entry of `suspicions` lists who that
    /// agent suspects.
    fn endpoints_with(suspicions: &[&[usize]]) -> Vec<ReliableEndpoint> {
        let n = suspicions.len();
        suspicions
            .iter()
            .enumerate()
            .map(|(me, suspects)| {
                let mut ep = ReliableEndpoint::new(me, n, RetryPolicy::default());
                for &p in *suspects {
                    ep.suspected[p] = true;
                }
                ep
            })
            .collect()
    }

    #[test]
    fn exclusion_vote_needs_a_strict_majority() {
        // One confused agent suspecting everyone cannot exclude anybody
        // (2 of 4 voters is not a strict majority)...
        let eps = endpoints_with(&[&[1, 2, 3, 4], &[], &[], &[], &[]]);
        assert!(exclusion_vote(&eps).is_empty());
        // ...but a crashed agent, suspected by every survivor, falls.
        let eps = endpoints_with(&[&[4], &[4], &[4], &[4], &[0, 1, 2, 3]]);
        assert_eq!(exclusion_vote(&eps), vec![4]);
    }

    #[test]
    fn exclusion_vote_discards_the_excluded_agents_votes() {
        // Agent 3 is crashed (suspects everyone, suspected by all). Its
        // blanket suspicion must not count against the survivors once it
        // is excluded, even though 0 also suspects 1 (2 of 3 votes
        // against 1 before the fixpoint discards 3's ballot).
        let eps = endpoints_with(&[&[1, 3], &[3], &[3], &[0, 1, 2]]);
        assert_eq!(exclusion_vote(&eps), vec![3]);
    }
}
