//! Reliable delivery: the per-agent ack/retransmit sublayer.
//!
//! In recovery mode (see [`crate::runner::DmwRunner::with_recovery`])
//! the runner interposes one [`ReliableEndpoint`] between each agent
//! and the transport. Every outbound protocol message is wrapped in a
//! [`Body::Sealed`] envelope carrying a per-link sequence number and a
//! piggybacked cumulative ack; inbound envelopes are unsealed,
//! deduplicated and released to the agent *in sequence order*, so the
//! agent above sees exactly the lossless message stream whatever the
//! network drops. Unacked messages are retransmitted on a deterministic
//! tick-based timeout with exponential backoff, bounded by a retry
//! budget; when the budget against a peer is exhausted the endpoint
//! marks the peer *suspected dead*, clears the link, and suppresses
//! further traffic toward it — the graceful-degradation signal the
//! runner's exclusion vote consumes (see `docs/recovery.md`).
//!
//! Everything here is driven by logical scheduler ticks and iterates in
//! peer-index order, so recovery behaviour is bit-replayable and
//! transport-invariant (lockstep vs. synchronous delay).

use crate::messages::Body;
use dmw_obs::{Key, MetricsSink, MetricsSnapshot};
use dmw_simnet::{Delivered, NodeId, Recipient};
use std::collections::BTreeMap;

/// Default first-retransmit timeout in scheduler ticks.
pub const RETRY_BASE_TIMEOUT: u64 = 4;

/// Default bound on retransmit attempts per message. Every retransmit
/// loop in this module is bounded by this budget (lint rule L8).
pub const RETRY_BUDGET: u32 = 5;

/// Timeout/backoff parameters of the reliable sublayer.
///
/// Attempt `k` (0-based, `k < budget`) of an unacked message fires
/// `base_timeout << k` ticks after the previous transmission, so the
/// whole repair window spans `base_timeout · 2^budget` ticks before
/// the sender gives up and suspects the peer. The *final* attempt
/// ships two back-to-back copies of the envelope: consecutive enqueue
/// slots can never both sit on a `drop_every(k)` schedule (no two
/// consecutive integers are both multiples of `k ≥ 2`), so a periodic
/// loss plan that happens to stay phase-locked with the doubling
/// cadence — every earlier attempt landing on a dropped slot — still
/// cannot kill the last one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Ticks before the first retransmission.
    pub base_timeout: u64,
    /// Maximum number of retransmissions per message.
    pub budget: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base_timeout: RETRY_BASE_TIMEOUT,
            budget: RETRY_BUDGET,
        }
    }
}

impl RetryPolicy {
    /// Worst-case ticks from first transmission to the *last*
    /// retransmission: `base_timeout · 2^budget` (the initial
    /// `base_timeout` wait plus the doubling backoffs
    /// `base_timeout · (1 + 2 + … + 2^{budget−1})`). A phase waiting
    /// out this window plus delivery latency is guaranteed to have seen
    /// every repairable message, which is how the runner scales agent
    /// patience in recovery mode.
    pub fn worst_case_repair(&self) -> u64 {
        self.base_timeout
            .saturating_mul(1u64.checked_shl(self.budget.min(32)).unwrap_or(u64::MAX))
    }
}

/// One in-flight message awaiting acknowledgement.
#[derive(Debug, Clone)]
struct PendingMsg {
    seq: u64,
    body: Body,
    /// Tick at which the next retransmission fires.
    next_retry: u64,
    /// Retransmissions performed so far.
    attempts: u32,
}

/// Reliability state of one directed peer link.
#[derive(Debug, Default)]
struct ReliableLink {
    /// Next outbound sequence number (1-based).
    next_seq: u64,
    /// Outbound messages not yet covered by a cumulative ack.
    unacked: Vec<PendingMsg>,
    /// Highest sequence number received in order from the peer; every
    /// `seq <= recv_cum` has been released to the agent.
    recv_cum: u64,
    /// Out-of-order arrivals buffered until the gap closes.
    reorder: BTreeMap<u64, Body>,
    /// `true` when the peer has sent us something since our last ack —
    /// piggybacked on the next outbound seal, or flushed as a
    /// standalone [`Body::Ack`] when nothing outbound is pending.
    owe_ack: bool,
}

/// The per-agent endpoint of the reliable sublayer: one
/// `ReliableLink` per peer plus suspicion state and metrics.
#[derive(Debug)]
pub struct ReliableEndpoint {
    me: usize,
    n: usize,
    policy: RetryPolicy,
    links: Vec<ReliableLink>,
    /// `suspected[p]`: the retry budget toward `p` is exhausted; no
    /// further protocol traffic is sent to `p`.
    suspected: Vec<bool>,
    metrics: MetricsSnapshot,
}

impl ReliableEndpoint {
    /// Creates the endpoint for agent `me` of `n`.
    pub fn new(me: usize, n: usize, policy: RetryPolicy) -> Self {
        ReliableEndpoint {
            me,
            n,
            policy,
            links: (0..n).map(|_| ReliableLink::default()).collect(),
            suspected: vec![false; n],
            metrics: MetricsSnapshot::default(),
        }
    }

    /// Which peers this endpoint has given up on.
    pub fn suspected(&self) -> &[bool] {
        &self.suspected
    }

    /// The endpoint's metrics: `retransmissions`, `acks_sent`,
    /// `duplicate_deliveries`, `suppressed_sends` and `suspect_dead`,
    /// labelled per (agent, peer) and — where the runner supplies it —
    /// the agent's phase at the time.
    pub fn metrics(&self) -> &MetricsSnapshot {
        &self.metrics
    }

    /// `true` when no outbound message is awaiting an ack and no ack is
    /// owed — the endpoint's contribution to run quiescence.
    pub fn is_settled(&self) -> bool {
        self.links
            .iter()
            .all(|l| l.unacked.is_empty() && !l.owe_ack)
    }

    /// The earliest tick at which [`ReliableEndpoint::tick`] would emit
    /// control traffic: the minimum `next_retry` over unacked envelopes
    /// on non-suspected links (retransmission or, once the budget is
    /// spent, the suspicion that clears the link), or `Some(0)` —
    /// "immediately" — when a standalone ack is owed (the scheduler
    /// clamps to the current tick). `None` when the endpoint is settled
    /// toward every peer: ticking it before `next_timer()` is then
    /// provably a no-op, which is what lets the event-driven scheduler
    /// register retransmission timers as future events instead of
    /// rediscovering them by polling (see `docs/scheduler.md`).
    pub fn next_timer(&self) -> Option<u64> {
        // Owed acks flush on the very next tick, even toward suspected
        // peers.
        if self.links.iter().any(|link| link.owe_ack) {
            return Some(0);
        }
        // Read-only inspection: every timer surveyed here was scheduled
        // by machinery already bounded by the `RetryPolicy` budget, so
        // reporting the minimum adds no retransmission of its own.
        self.links
            .iter()
            .enumerate()
            .filter(|(peer, _)| !self.suspected[*peer])
            .flat_map(|(_, link)| link.unacked.iter().map(|pending| pending.next_retry))
            .min()
    }

    /// Wraps one tick's protocol output into sealed per-peer unicasts.
    /// Broadcasts expand to one envelope per non-suspected peer (the
    /// transport-level `n − 1` cost model, minus the dead); unicasts to
    /// suspected peers are suppressed and counted. Piggybacks the
    /// cumulative ack for each destination and registers every envelope
    /// for retransmission.
    pub fn seal_outgoing(
        &mut self,
        now: u64,
        phase: &'static str,
        outgoing: Vec<(Recipient, Body)>,
    ) -> Vec<(NodeId, Body)> {
        let mut wire = Vec::new();
        for (recipient, body) in outgoing {
            match recipient {
                Recipient::Unicast(to) => {
                    self.seal_one(now, phase, to.0, body, &mut wire);
                }
                Recipient::Broadcast => {
                    for to in 0..self.n {
                        if to != self.me {
                            self.seal_one(now, phase, to, body.clone(), &mut wire);
                        }
                    }
                }
            }
        }
        wire
    }

    fn seal_one(
        &mut self,
        now: u64,
        phase: &'static str,
        to: usize,
        body: Body,
        wire: &mut Vec<(NodeId, Body)>,
    ) {
        if self.suspected[to] {
            let key = Key::named("suppressed_sends")
                .phase(phase)
                .agent(self.me as u32)
                .peer(to as u32);
            self.metrics.incr(key, 1);
            return;
        }
        let link = &mut self.links[to];
        link.next_seq += 1;
        let seq = link.next_seq;
        link.owe_ack = false; // the envelope carries the ack
        link.unacked.push(PendingMsg {
            seq,
            body: body.clone(),
            next_retry: now + self.policy.base_timeout,
            attempts: 0,
        });
        wire.push((
            NodeId(to),
            Body::Sealed {
                seq,
                ack: link.recv_cum,
                inner: Box::new(body),
            },
        ));
    }

    /// Unseals one tick's arrivals: applies piggybacked and standalone
    /// acks, deduplicates, buffers out-of-order envelopes, and returns
    /// the in-order protocol messages the agent should see. Non-sealed
    /// protocol bodies pass through untouched (they cannot occur in
    /// recovery mode, but the contract stays total).
    pub fn process_inbound(&mut self, inbox: Vec<Delivered<Body>>) -> Vec<Delivered<Body>> {
        let mut released = Vec::new();
        for msg in inbox {
            let from = msg.from.0;
            match msg.payload {
                Body::Sealed { seq, ack, inner } => {
                    self.apply_ack(from, ack);
                    let link = &mut self.links[from];
                    link.owe_ack = true;
                    if seq <= link.recv_cum {
                        let key = Key::named("duplicate_deliveries")
                            .agent(self.me as u32)
                            .peer(from as u32);
                        self.metrics.incr(key, 1);
                        continue;
                    }
                    if seq == link.recv_cum + 1 {
                        link.recv_cum = seq;
                        released.push(Delivered {
                            from: msg.from,
                            broadcast: msg.broadcast,
                            payload: *inner,
                        });
                        // The gap may have closed: drain the reorder
                        // buffer while it stays consecutive.
                        while let Some(body) = link.reorder.remove(&(link.recv_cum + 1)) {
                            link.recv_cum += 1;
                            released.push(Delivered {
                                from: msg.from,
                                broadcast: msg.broadcast,
                                payload: body,
                            });
                        }
                    } else {
                        // Out of order: hold until the gap closes. A
                        // duplicate of a buffered seq is idempotent.
                        link.reorder.entry(seq).or_insert(*inner);
                    }
                }
                Body::Ack { ack } => {
                    self.apply_ack(from, ack);
                }
                Body::SuspectDead { peer } => {
                    // Observability only: the exclusion vote reads each
                    // endpoint's own suspicion state, never this notice.
                    let key = Key::named("suspect_notices")
                        .agent(self.me as u32)
                        .peer(peer as u32);
                    self.metrics.incr(key, 1);
                }
                other => released.push(Delivered {
                    from: msg.from,
                    broadcast: msg.broadcast,
                    payload: other,
                }),
            }
        }
        released
    }

    fn apply_ack(&mut self, from: usize, ack: u64) {
        self.links[from].unacked.retain(|p| p.seq > ack);
    }

    /// Advances the retransmit timers one tick and flushes owed acks.
    /// Returns control traffic to transmit: retransmissions of overdue
    /// envelopes (backoff-doubled, budget-bounded), standalone
    /// [`Body::Ack`]s for peers with nothing outbound to piggyback on,
    /// and a fire-and-forget [`Body::SuspectDead`] broadcast when a
    /// peer's budget exhausts this tick.
    pub fn tick(&mut self, now: u64, phase: &'static str) -> Vec<(Recipient, Body)> {
        let mut out = Vec::new();
        for peer in 0..self.n {
            if peer == self.me {
                continue;
            }
            if !self.suspected[peer] {
                let mut exhausted = false;
                let link = &mut self.links[peer];
                // Budget-bounded retransmit sweep: every pending message
                // retries at most `policy.budget` times (L8).
                for pending in &mut link.unacked {
                    if pending.next_retry > now {
                        continue;
                    }
                    if pending.attempts >= self.policy.budget {
                        exhausted = true;
                        break;
                    }
                    // The final budgeted attempt ships two back-to-back
                    // copies: consecutive enqueue slots can never both
                    // be multiples of a drop period `k ≥ 2`, so a
                    // periodic loss schedule phase-locked with the
                    // doubling backoff cannot kill every attempt.
                    let copies = if pending.attempts + 1 >= self.policy.budget {
                        2
                    } else {
                        1
                    };
                    for _ in 0..copies {
                        out.push((
                            Recipient::Unicast(NodeId(peer)),
                            Body::Sealed {
                                seq: pending.seq,
                                ack: link.recv_cum,
                                inner: Box::new(pending.body.clone()),
                            },
                        ));
                    }
                    link.owe_ack = false;
                    pending.next_retry = now + (self.policy.base_timeout << pending.attempts);
                    pending.attempts += 1;
                    let key = Key::named("retransmissions")
                        .phase(phase)
                        .agent(self.me as u32)
                        .peer(peer as u32);
                    self.metrics.incr(key, copies);
                }
                if exhausted {
                    self.suspected[peer] = true;
                    self.links[peer].unacked.clear();
                    let key = Key::named("suspect_dead")
                        .phase(phase)
                        .agent(self.me as u32)
                        .peer(peer as u32);
                    self.metrics.incr(key, 1);
                    out.push((Recipient::Broadcast, Body::SuspectDead { peer }));
                }
            }
            // Owed acks flush even toward suspected peers: an ack is
            // never acked back, so this costs one message and helps the
            // other side settle.
            let link = &mut self.links[peer];
            if link.owe_ack {
                out.push((
                    Recipient::Unicast(NodeId(peer)),
                    Body::Ack { ack: link.recv_cum },
                ));
                link.owe_ack = false;
                let key = Key::named("acks_sent")
                    .agent(self.me as u32)
                    .peer(peer as u32);
                self.metrics.incr(key, 1);
            }
        }
        out
    }
}

/// The deterministic exclusion round the runner executes after a
/// recovery-mode run: agent `p` is excluded when a *strict majority* of
/// the non-excluded voters (everyone but `p` itself) suspect it. Each
/// fixpoint round excludes only the candidate(s) carrying the *most*
/// votes, so a crashed agent — suspected by every survivor, and whose
/// own endpoint suspects everybody — falls first, and its blanket
/// suspicions are discarded before they can drag a survivor down with
/// it. Returns the excluded agent indices in ascending order.
pub fn exclusion_vote(endpoints: &[ReliableEndpoint]) -> Vec<usize> {
    let n = endpoints.len();
    let mut excluded = vec![false; n];
    loop {
        let mut candidates: Vec<(usize, usize)> = Vec::new();
        for p in 0..n {
            if excluded[p] {
                continue;
            }
            let voters: Vec<usize> = (0..n).filter(|&v| v != p && !excluded[v]).collect();
            let votes = voters
                .iter()
                .filter(|&&v| endpoints[v].suspected().get(p).copied().unwrap_or(false))
                .count();
            if 2 * votes > voters.len() {
                candidates.push((votes, p));
            }
        }
        let Some(&(most, _)) = candidates.iter().max() else {
            break;
        };
        for &(votes, p) in &candidates {
            if votes == most {
                excluded[p] = true;
            }
        }
    }
    (0..n).filter(|&p| excluded[p]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delivered(from: usize, payload: Body) -> Delivered<Body> {
        Delivered {
            from: NodeId(from),
            broadcast: false,
            payload,
        }
    }

    fn ack_body(task: usize) -> Body {
        Body::Disclose {
            task,
            f_values: vec![1, 2],
        }
    }

    #[test]
    fn sealing_stamps_consecutive_sequence_numbers_per_link() {
        let mut ep = ReliableEndpoint::new(0, 3, RetryPolicy::default());
        let wire = ep.seal_outgoing(
            0,
            "bidding",
            vec![
                (Recipient::Unicast(NodeId(1)), ack_body(0)),
                (Recipient::Broadcast, ack_body(1)),
            ],
        );
        // Unicast to 1, then broadcast to 1 and 2.
        assert_eq!(wire.len(), 3);
        let seqs: Vec<(usize, u64)> = wire
            .iter()
            .map(|(to, b)| match b {
                Body::Sealed { seq, .. } => (to.0, *seq),
                other => panic!("unsealed {}", other.kind()),
            })
            .collect();
        assert_eq!(seqs, vec![(1, 1), (1, 2), (2, 1)]);
    }

    #[test]
    fn inbound_envelopes_release_in_order_and_dedup() {
        let mut ep = ReliableEndpoint::new(0, 2, RetryPolicy::default());
        let seal = |seq: u64, task: usize| Body::Sealed {
            seq,
            ack: 0,
            inner: Box::new(ack_body(task)),
        };
        // Arrivals out of order: 2 buffers, 1 releases both, dup of 1
        // is swallowed.
        let released = ep.process_inbound(vec![delivered(1, seal(2, 22))]);
        assert!(released.is_empty(), "gap: held for reordering");
        let released =
            ep.process_inbound(vec![delivered(1, seal(1, 11)), delivered(1, seal(1, 11))]);
        let tasks: Vec<Option<usize>> = released.iter().map(|d| d.payload.task()).collect();
        assert_eq!(tasks, vec![Some(11), Some(22)]);
        assert_eq!(
            ep.metrics()
                .counter(&Key::named("duplicate_deliveries").agent(0).peer(1)),
            1
        );
    }

    #[test]
    fn unacked_messages_retransmit_with_backoff_then_suspect() {
        let policy = RetryPolicy {
            base_timeout: 2,
            budget: 2,
        };
        let mut ep = ReliableEndpoint::new(0, 2, policy);
        let _ = ep.seal_outgoing(
            0,
            "bidding",
            vec![(Recipient::Unicast(NodeId(1)), ack_body(0))],
        );
        // next_retry = 2; backoff doubles: attempt 0 fires at tick 2,
        // the final attempt at tick 4 ships two back-to-back copies
        // (the anti-resonance echo), then the budget is exhausted at
        // the next overdue tick — worst_case_repair() = 2·2² = 8.
        let mut retransmits = 0;
        let mut suspected_at = None;
        for now in 1..=20 {
            for (_, body) in ep.tick(now, "commitments") {
                match body {
                    Body::Sealed { .. } => retransmits += 1,
                    Body::SuspectDead { peer } => {
                        assert_eq!(peer, 1);
                        suspected_at.get_or_insert(now);
                    }
                    other => panic!("unexpected {}", other.kind()),
                }
            }
        }
        assert_eq!(
            retransmits, 3,
            "budget bounds the sweep: 1 + the doubled final attempt"
        );
        assert_eq!(suspected_at, Some(policy.worst_case_repair()));
        assert!(ep.suspected()[1]);
        assert!(ep.is_settled(), "suspicion clears the link");
        // Further sends to the suspected peer are suppressed.
        let wire = ep.seal_outgoing(15, "resolution", vec![(Recipient::Broadcast, ack_body(1))]);
        assert!(wire.is_empty());
        assert_eq!(ep.metrics().counter_total("suppressed_sends"), 1);
    }

    #[test]
    fn acks_stop_retransmission_and_standalone_acks_flush() {
        let mut ep = ReliableEndpoint::new(0, 2, RetryPolicy::default());
        let _ = ep.seal_outgoing(
            0,
            "bidding",
            vec![(Recipient::Unicast(NodeId(1)), ack_body(0))],
        );
        assert!(!ep.is_settled());
        // Peer acks seq 1 and sends its own envelope.
        let released = ep.process_inbound(vec![delivered(
            1,
            Body::Sealed {
                seq: 1,
                ack: 1,
                inner: Box::new(ack_body(9)),
            },
        )]);
        assert_eq!(released.len(), 1);
        assert!(!ep.is_settled(), "an ack is owed");
        // No outbound traffic: the owed ack flushes standalone.
        let control = ep.tick(1, "commitments");
        assert_eq!(control.len(), 1);
        assert!(matches!(control[0].1, Body::Ack { ack: 1 }));
        assert!(ep.is_settled());
        // Nothing further: no retransmissions, no ack storms.
        for now in 2..40 {
            assert!(ep.tick(now, "commitments").is_empty());
        }
    }

    /// `next_timer` must bracket exactly the ticks on which `tick`
    /// emits something: skipping every tick before it, then ticking at
    /// it, reproduces the poll-every-tick behaviour.
    #[test]
    fn next_timer_predicts_every_emitting_tick() {
        let policy = RetryPolicy {
            base_timeout: 2,
            budget: 2,
        };
        let mut ep = ReliableEndpoint::new(0, 2, policy);
        assert_eq!(ep.next_timer(), None);
        let _ = ep.seal_outgoing(
            0,
            "bidding",
            vec![(Recipient::Unicast(NodeId(1)), ack_body(0))],
        );
        assert_eq!(ep.next_timer(), Some(2), "first retry at base_timeout");
        // Event-style drive: jump straight to each promised tick.
        let mut emitted_at = Vec::new();
        while let Some(due) = ep.next_timer() {
            let out = ep.tick(due, "commitments");
            assert!(
                !out.is_empty(),
                "next_timer promised activity at {due} but tick was empty"
            );
            emitted_at.push(due);
            if ep.suspected()[1] {
                break;
            }
        }
        // Poll-every-tick oracle over the same policy.
        let mut oracle = ReliableEndpoint::new(0, 2, policy);
        let _ = oracle.seal_outgoing(
            0,
            "bidding",
            vec![(Recipient::Unicast(NodeId(1)), ack_body(0))],
        );
        let mut oracle_emitted = Vec::new();
        for now in 1..=20 {
            if !oracle.tick(now, "commitments").is_empty() {
                oracle_emitted.push(now);
            }
        }
        assert_eq!(emitted_at, oracle_emitted);
        assert_eq!(ep.next_timer(), None, "suspicion cleared the link");
        // An owed ack is due immediately.
        let released = ep.process_inbound(vec![delivered(
            1,
            Body::Sealed {
                seq: 1,
                ack: 0,
                inner: Box::new(ack_body(3)),
            },
        )]);
        assert_eq!(released.len(), 1);
        assert_eq!(ep.next_timer(), Some(0));
    }

    /// Builds endpoints where each entry of `suspicions` lists who that
    /// agent suspects.
    fn endpoints_with(suspicions: &[&[usize]]) -> Vec<ReliableEndpoint> {
        let n = suspicions.len();
        suspicions
            .iter()
            .enumerate()
            .map(|(me, suspects)| {
                let mut ep = ReliableEndpoint::new(me, n, RetryPolicy::default());
                for &p in *suspects {
                    ep.suspected[p] = true;
                }
                ep
            })
            .collect()
    }

    #[test]
    fn exclusion_vote_needs_a_strict_majority() {
        // One confused agent suspecting everyone cannot exclude anybody
        // (2 of 4 voters is not a strict majority)...
        let eps = endpoints_with(&[&[1, 2, 3, 4], &[], &[], &[], &[]]);
        assert!(exclusion_vote(&eps).is_empty());
        // ...but a crashed agent, suspected by every survivor, falls.
        let eps = endpoints_with(&[&[4], &[4], &[4], &[4], &[0, 1, 2, 3]]);
        assert_eq!(exclusion_vote(&eps), vec![4]);
    }

    #[test]
    fn exclusion_vote_discards_the_excluded_agents_votes() {
        // Agent 3 is crashed (suspects everyone, suspected by all). Its
        // blanket suspicion must not count against the survivors once it
        // is excluded, even though 0 also suspects 1 (2 of 3 votes
        // against 1 before the fixpoint discards 3's ballot).
        let eps = endpoints_with(&[&[1, 3], &[3], &[3], &[0, 1, 2]]);
        assert_eq!(exclusion_vote(&eps), vec![3]);
    }
}
