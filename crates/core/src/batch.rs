//! The batch-execution engine: fans independent protocol trials across a
//! thread pool with deterministic per-trial RNG streams.
//!
//! Both the paper's mechanism and its evaluation are embarrassingly
//! parallel: DMW sells each of the `m` tasks in an *independent*
//! distributed Vickrey auction (Section 4), and the Section 5 experiments
//! are thousands of independent randomized trials. [`BatchRunner`] exploits
//! that structure without giving up replayability:
//!
//! * every trial draws from a private [`StdRng`] seeded by
//!   [`crate::config::trial_seed`]`(batch_seed, index)` — a pure function
//!   of the batch seed and the trial's submission index — so the results
//!   are **bit-identical whatever the thread count** (the
//!   `batch_determinism` integration test pins this down for widths 1, 2
//!   and 8);
//! * results are returned **in submission order**, regardless of which
//!   worker computed which trial and in what order trials finished;
//! * within a trial, [`crate::runner::DmwRunner::with_verify_threads`] can
//!   additionally fan the Phase III.1 share-verification work
//!   ([`dmw_crypto::commitments::verify_shares_batch`]) across the pool.
//!
//! [`BatchRunner::run_trials`] submits protocol trials against a fixed
//! [`DmwRunner`]; the generic [`BatchRunner::map`] / [`BatchRunner::execute`]
//! fan arbitrary jobs (the `dmw-bench` experiment sweeps go through these,
//! since each sweep point regenerates its own configuration).
//!
//! # Example: a deterministic honest sweep
//!
//! ```
//! use dmw::batch::BatchRunner;
//! use dmw::config::DmwConfig;
//! use dmw::runner::DmwRunner;
//! use dmw_mechanism::ExecutionTimes;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let runner = DmwRunner::new(DmwConfig::generate(4, 0, &mut rng)?);
//! let instances: Vec<ExecutionTimes> = vec![
//!     ExecutionTimes::from_rows(vec![vec![2], vec![1], vec![3], vec![2]])?,
//!     ExecutionTimes::from_rows(vec![vec![1], vec![2], vec![2], vec![3]])?,
//! ];
//! let wide = BatchRunner::with_threads(8).run_honest(&runner, 42, &instances);
//! let narrow = BatchRunner::with_threads(1).run_honest(&runner, 42, &instances);
//! // Same batch seed -> same outcomes, whatever the thread count.
//! for (w, n) in wide.iter().zip(&narrow) {
//!     assert_eq!(
//!         w.as_ref().unwrap().completed()?.schedule,
//!         n.as_ref().unwrap().completed()?.schedule,
//!     );
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::config::trial_seed;
use crate::error::DmwError;
use crate::runner::{DmwRun, DmwRunner};
use crate::strategy::Behavior;
use dmw_mechanism::ExecutionTimes;
use dmw_obs::MetricsSnapshot;
use dmw_simnet::FaultPlan;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

/// Folds the metrics snapshots of every successful run in a batch into
/// one aggregate (counters add, gauges max, histogram buckets add) —
/// the whole-sweep analogue of summing [`dmw_simnet::NetworkStats`].
/// Trials that failed validation contribute nothing.
pub fn aggregate_metrics(runs: &[Result<DmwRun, DmwError>]) -> MetricsSnapshot {
    runs.iter()
        .filter_map(|r| r.as_ref().ok())
        .map(|run| &run.metrics)
        .sum()
}

/// One trial submitted to [`BatchRunner::run_trials`]: a bid matrix plus
/// optional per-agent behaviors and an optional network fault plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialSpec {
    /// The bid matrix (rows index agents, columns tasks).
    pub bids: ExecutionTimes,
    /// Per-agent behaviors; `None` means every agent follows the
    /// suggested strategy.
    pub behaviors: Option<Vec<Behavior>>,
    /// The injected network faults; `None` means a fault-free network.
    pub faults: Option<FaultPlan>,
}

impl TrialSpec {
    /// An honest, fault-free trial over `bids`.
    pub fn honest(bids: ExecutionTimes) -> Self {
        TrialSpec {
            bids,
            behaviors: None,
            faults: None,
        }
    }

    /// Sets per-agent behaviors (length must match the runner's `n`).
    #[must_use]
    pub fn with_behaviors(mut self, behaviors: Vec<Behavior>) -> Self {
        self.behaviors = Some(behaviors);
        self
    }

    /// Sets the network fault plan.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }
}

/// Fans independent jobs across a configurable thread pool, with
/// deterministic seeding and submission-order results.
///
/// See the [module docs](self) for the determinism contract.
#[derive(Debug)]
pub struct BatchRunner {
    pool: rayon::ThreadPool,
    threads: usize,
}

impl Default for BatchRunner {
    fn default() -> Self {
        BatchRunner::new()
    }
}

impl BatchRunner {
    /// A batch runner over all available hardware parallelism.
    pub fn new() -> Self {
        BatchRunner::with_threads(0)
    }

    /// A batch runner over exactly `threads` workers; `0` means "all
    /// available hardware parallelism".
    ///
    /// # Panics
    ///
    /// Panics if the underlying thread pool cannot be built — that only
    /// happens when the host refuses to spawn threads, which no caller
    /// can meaningfully handle.
    pub fn with_threads(threads: usize) -> Self {
        let pool = match rayon::ThreadPoolBuilder::new().num_threads(threads).build() {
            Ok(pool) => pool,
            Err(e) => panic!("batch thread pool: {e}"),
        };
        let threads = pool.current_num_threads();
        BatchRunner { pool, threads }
    }

    /// The worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(index, &job)` for every job, fanning across the pool, and
    /// returns the results in submission order.
    ///
    /// This is the deterministic-order parallel-map primitive everything
    /// else builds on: `f` receives the job's submission index, so any
    /// seeding derived from it is independent of thread scheduling.
    pub fn map<T, R, F>(&self, jobs: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Send + Sync,
    {
        self.pool.install(|| {
            jobs.par_iter()
                .enumerate()
                .map(|(i, job)| f(i, job))
                .collect()
        })
    }

    /// Like [`BatchRunner::map`], additionally handing `f` a private RNG
    /// seeded from [`trial_seed`]`(batch_seed, index)`.
    pub fn execute<T, R, F>(&self, batch_seed: u64, jobs: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T, &mut StdRng) -> R + Send + Sync,
    {
        self.map(jobs, |i, job| {
            let mut rng = StdRng::seed_from_u64(trial_seed(batch_seed, i as u64));
            f(i, job, &mut rng)
        })
    }

    /// Runs every trial through `runner`, fanning across the pool.
    ///
    /// Trial `i` draws from a private stream seeded by
    /// [`trial_seed`]`(batch_seed, i)`; the returned runs are in
    /// submission order and bit-identical whatever the thread count. A
    /// trial's shape/range errors are reported in its slot, not
    /// propagated — one malformed trial must not poison a batch.
    pub fn run_trials(
        &self,
        runner: &DmwRunner,
        batch_seed: u64,
        trials: &[TrialSpec],
    ) -> Vec<Result<DmwRun, DmwError>> {
        let n = runner.config().agents();
        self.execute(batch_seed, trials, |_, trial, rng| {
            let behaviors = match &trial.behaviors {
                Some(behaviors) => behaviors.clone(),
                None => vec![Behavior::Suggested; n],
            };
            let faults = match &trial.faults {
                Some(faults) => faults.clone(),
                None => FaultPlan::none(n),
            };
            runner.run(&trial.bids, &behaviors, faults, rng)
        })
    }

    /// [`BatchRunner::run_trials`] over honest, fault-free trials.
    pub fn run_honest(
        &self,
        runner: &DmwRunner,
        batch_seed: u64,
        instances: &[ExecutionTimes],
    ) -> Vec<Result<DmwRun, DmwError>> {
        let trials: Vec<TrialSpec> = instances
            .iter()
            .map(|bids| TrialSpec::honest(bids.clone()))
            .collect();
        self.run_trials(runner, batch_seed, &trials)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DmwConfig;

    fn runner(n: usize, c: usize, seed: u64) -> DmwRunner {
        let mut rng = StdRng::seed_from_u64(seed);
        DmwRunner::new(DmwConfig::generate(n, c, &mut rng).unwrap())
    }

    fn instances(count: usize, n: usize, m: usize, w_max: u64, seed: u64) -> Vec<ExecutionTimes> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|_| dmw_mechanism::generators::uniform(n, m, 1..=w_max, &mut rng).unwrap())
            .collect()
    }

    #[test]
    fn results_are_thread_count_invariant() {
        let runner = runner(5, 1, 11);
        let w_max = runner.config().encoding().w_max();
        let batch = instances(6, 5, 2, w_max, 99);
        let sequential = BatchRunner::with_threads(1).run_honest(&runner, 7, &batch);
        let parallel = BatchRunner::with_threads(4).run_honest(&runner, 7, &batch);
        assert_eq!(sequential.len(), parallel.len());
        for (s, p) in sequential.iter().zip(&parallel) {
            let (s, p) = (s.as_ref().unwrap(), p.as_ref().unwrap());
            assert_eq!(s.result, p.result);
            assert_eq!(s.network, p.network);
            assert_eq!(s.metrics, p.metrics);
            assert_eq!(s.trace, p.trace);
        }
        assert_eq!(
            aggregate_metrics(&sequential),
            aggregate_metrics(&parallel),
            "aggregate snapshots are thread-count invariant too"
        );
    }

    #[test]
    fn batch_matches_manual_sequential_replay() {
        let runner = runner(4, 0, 12);
        let w_max = runner.config().encoding().w_max();
        let batch = instances(4, 4, 1, w_max, 5);
        let results = BatchRunner::with_threads(3).run_honest(&runner, 31, &batch);
        for (i, (bids, run)) in batch.iter().zip(&results).enumerate() {
            let mut rng = StdRng::seed_from_u64(trial_seed(31, i as u64));
            let replay = runner.run_honest(bids, &mut rng).unwrap();
            assert_eq!(replay.result, run.as_ref().unwrap().result);
        }
    }

    #[test]
    fn trial_errors_stay_in_their_slot() {
        let runner = runner(4, 0, 13);
        // Second trial has the wrong number of agents.
        let good = ExecutionTimes::from_rows(vec![vec![2], vec![1], vec![3], vec![2]]).unwrap();
        let bad = ExecutionTimes::from_rows(vec![vec![1], vec![1]]).unwrap();
        let trials = vec![TrialSpec::honest(good), TrialSpec::honest(bad)];
        let results = BatchRunner::with_threads(2).run_trials(&runner, 1, &trials);
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(DmwError::ShapeMismatch { .. })));
    }

    #[test]
    fn deviant_trials_abort_in_parallel_too() {
        let runner = runner(4, 0, 14);
        let bids = ExecutionTimes::from_rows(vec![vec![2], vec![1], vec![3], vec![2]]).unwrap();
        let mut behaviors = vec![Behavior::Suggested; 4];
        behaviors[1] = Behavior::TamperedCommitments;
        let trials = vec![
            TrialSpec::honest(bids.clone()),
            TrialSpec::honest(bids).with_behaviors(behaviors),
        ];
        let results = BatchRunner::with_threads(2).run_trials(&runner, 3, &trials);
        assert!(results[0].as_ref().unwrap().is_completed());
        assert!(results[1].as_ref().unwrap().abort_reason().is_some());
    }

    #[test]
    fn generic_execute_derives_independent_streams() {
        let engine = BatchRunner::with_threads(4);
        let jobs: Vec<u32> = (0..8).collect();
        let draws = engine.execute(77, &jobs, |_, _, rng| {
            use rand::Rng;
            rng.gen::<u64>()
        });
        let replay = engine.execute(77, &jobs, |_, _, rng| {
            use rand::Rng;
            rng.gen::<u64>()
        });
        assert_eq!(draws, replay);
        let distinct: std::collections::HashSet<_> = draws.iter().collect();
        assert_eq!(distinct.len(), draws.len(), "streams must not collide");
    }
}
