//! Binary wire codec for protocol messages.
//!
//! The communication-cost experiment should count *real* bytes, not
//! estimates, so every [`Body`] encodes to a compact binary form: a tag
//! byte, little-endian `u64` residues, and `u32`-length-prefixed vectors
//! (participation masks are bit-packed). `Body::size_bytes` — the
//! quantity the network statistics accumulate — is the exact encoded
//! length, and a round-trip property test pins `encode ∘ decode` to the
//! identity.

use crate::error::AbortReason;
use crate::messages::Body;
use dmw_crypto::polynomials::ShareBundle;
use dmw_crypto::resolution::LambdaPsi;
use dmw_crypto::{BidEncoding, Commitments};
use std::error::Error;
use std::fmt;

/// Errors produced when decoding a wire message.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeError {
    /// The buffer ended before the message was complete.
    Truncated,
    /// Unknown message or abort-reason tag.
    BadTag {
        /// The offending byte.
        tag: u8,
    },
    /// A length prefix exceeded the sanity limit.
    LengthOverflow {
        /// The claimed element count.
        len: u32,
    },
    /// Trailing bytes after a complete message.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
    /// Commitment vectors did not match the supplied encoding's `σ`.
    WrongCommitmentShape,
    /// Sequence ranges violated their invariants: a selective-ack or
    /// repair set that is empty where it may not be, descending, or
    /// overlapping, or a nack range with `lo > hi`.
    MalformedRanges,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "message truncated"),
            DecodeError::BadTag { tag } => write!(f, "unknown tag {tag:#04x}"),
            DecodeError::LengthOverflow { len } => write!(f, "length {len} exceeds sanity limit"),
            DecodeError::TrailingBytes { extra } => write!(f, "{extra} trailing bytes"),
            DecodeError::WrongCommitmentShape => {
                write!(f, "commitment vectors do not match the encoding")
            }
            DecodeError::MalformedRanges => {
                write!(f, "sequence ranges are empty, descending, or overlapping")
            }
        }
    }
}

impl Error for DecodeError {}

/// Sanity cap on decoded vector lengths (the protocol never exceeds the
/// agent count, far below this).
const MAX_VEC: u32 = 1 << 20;

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer {
            buf: Vec::with_capacity(64),
        }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64s(&mut self, vs: &[u64]) {
        self.u32(vs.len() as u32);
        for &v in vs {
            self.u64(v);
        }
    }

    fn bools(&mut self, vs: &[bool]) {
        self.u32(vs.len() as u32);
        let mut byte = 0u8;
        for (i, &b) in vs.iter().enumerate() {
            if b {
                byte |= 1 << (i % 8);
            }
            if i % 8 == 7 {
                self.buf.push(byte);
                byte = 0;
            }
        }
        if !vs.len().is_multiple_of(8) {
            self.buf.push(byte);
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        let v = *self.buf.get(self.pos).ok_or(DecodeError::Truncated)?;
        self.pos += 1;
        Ok(v)
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let bytes: [u8; 4] = self
            .buf
            .get(self.pos..self.pos + 4)
            .and_then(|s| s.try_into().ok())
            .ok_or(DecodeError::Truncated)?;
        self.pos += 4;
        Ok(u32::from_le_bytes(bytes))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        let bytes: [u8; 8] = self
            .buf
            .get(self.pos..self.pos + 8)
            .and_then(|s| s.try_into().ok())
            .ok_or(DecodeError::Truncated)?;
        self.pos += 8;
        Ok(u64::from_le_bytes(bytes))
    }

    fn u64s(&mut self) -> Result<Vec<u64>, DecodeError> {
        let len = self.u32()?;
        if len > MAX_VEC {
            return Err(DecodeError::LengthOverflow { len });
        }
        (0..len).map(|_| self.u64()).collect()
    }

    fn bools(&mut self) -> Result<Vec<bool>, DecodeError> {
        let len = self.u32()?;
        if len > MAX_VEC {
            return Err(DecodeError::LengthOverflow { len });
        }
        let bytes = len.div_ceil(8) as usize;
        let slice = self
            .buf
            .get(self.pos..self.pos + bytes)
            .ok_or(DecodeError::Truncated)?;
        self.pos += bytes;
        // Bit i lives in byte i / 8 at position i % 8; expanding every
        // byte and truncating to `len` avoids indexed access entirely.
        Ok(slice
            .iter()
            .flat_map(|&byte| (0u32..8).map(move |bit| byte & (1 << bit) != 0))
            .take(len as usize)
            .collect())
    }

    fn finish(self) -> Result<(), DecodeError> {
        let extra = self.buf.len() - self.pos;
        if extra != 0 {
            return Err(DecodeError::TrailingBytes { extra });
        }
        Ok(())
    }
}

const TAG_SHARES: u8 = 1;
const TAG_COMMIT: u8 = 2;
const TAG_LAMBDA: u8 = 3;
const TAG_DISCLOSE: u8 = 4;
const TAG_EXCLUDED: u8 = 5;
const TAG_PAYMENT: u8 = 6;
const TAG_ABORT: u8 = 7;
const TAG_BATCH: u8 = 8;
const TAG_WINNER_CLAIM: u8 = 9;
const TAG_SEALED: u8 = 10;
const TAG_ACK: u8 = 11;
const TAG_SUSPECT_DEAD: u8 = 12;
const TAG_NACK: u8 = 13;
const TAG_REPAIR: u8 = 14;

fn encode_abort(reason: &AbortReason, w: &mut Writer) {
    match reason {
        AbortReason::InvalidShares { sender } => {
            w.u8(0);
            w.u32(*sender as u32);
        }
        AbortReason::InvalidLambdaPsi { publisher } => {
            w.u8(1);
            w.u32(*publisher as u32);
        }
        AbortReason::InconsistentMask { publisher } => {
            w.u8(2);
            w.u32(*publisher as u32);
        }
        AbortReason::InvalidDisclosure { discloser } => {
            w.u8(3);
            w.u32(*discloser as u32);
        }
        AbortReason::InvalidExcluded { publisher } => {
            w.u8(4);
            w.u32(*publisher as u32);
        }
        AbortReason::Unresolvable => w.u8(5),
        AbortReason::NoWinner => w.u8(6),
        AbortReason::TooManyFaults {
            observed,
            tolerated,
        } => {
            w.u8(7);
            w.u32(*observed as u32);
            w.u32(*tolerated as u32);
        }
        AbortReason::PaymentDisagreement => w.u8(8),
        AbortReason::PeerAborted { peer } => {
            w.u8(9);
            w.u32(*peer as u32);
        }
    }
}

fn decode_abort(r: &mut Reader<'_>) -> Result<AbortReason, DecodeError> {
    Ok(match r.u8()? {
        0 => AbortReason::InvalidShares {
            sender: r.u32()? as usize,
        },
        1 => AbortReason::InvalidLambdaPsi {
            publisher: r.u32()? as usize,
        },
        2 => AbortReason::InconsistentMask {
            publisher: r.u32()? as usize,
        },
        3 => AbortReason::InvalidDisclosure {
            discloser: r.u32()? as usize,
        },
        4 => AbortReason::InvalidExcluded {
            publisher: r.u32()? as usize,
        },
        5 => AbortReason::Unresolvable,
        6 => AbortReason::NoWinner,
        7 => AbortReason::TooManyFaults {
            observed: r.u32()? as usize,
            tolerated: r.u32()? as usize,
        },
        8 => AbortReason::PaymentDisagreement,
        9 => AbortReason::PeerAborted {
            peer: r.u32()? as usize,
        },
        tag => return Err(DecodeError::BadTag { tag }),
    })
}

impl Body {
    /// Encodes the message to its wire form.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Body::Shares { task, bundle } => {
                w.u8(TAG_SHARES);
                w.u32(*task as u32);
                w.u64(bundle.e);
                w.u64(bundle.f);
                w.u64(bundle.g);
                w.u64(bundle.h);
            }
            Body::Commit { task, commitments } => {
                w.u8(TAG_COMMIT);
                w.u32(*task as u32);
                w.u64s(commitments.o());
                w.u64s(commitments.q());
                w.u64s(commitments.r());
            }
            Body::Lambda {
                task,
                pair,
                included,
            } => {
                w.u8(TAG_LAMBDA);
                w.u32(*task as u32);
                w.u64(pair.lambda);
                w.u64(pair.psi);
                w.bools(included);
            }
            Body::Disclose { task, f_values } => {
                w.u8(TAG_DISCLOSE);
                w.u32(*task as u32);
                w.u64s(f_values);
            }
            Body::WinnerClaim { task, points } => {
                w.u8(TAG_WINNER_CLAIM);
                w.u32(*task as u32);
                w.u32(points.len() as u32);
                for &(agent, f, h) in points {
                    w.u32(agent as u32);
                    w.u64(f);
                    w.u64(h);
                }
            }
            Body::Excluded { task, pair } => {
                w.u8(TAG_EXCLUDED);
                w.u32(*task as u32);
                w.u64(pair.lambda);
                w.u64(pair.psi);
            }
            Body::PaymentClaim { payments } => {
                w.u8(TAG_PAYMENT);
                w.u64s(payments);
            }
            Body::Abort { reason } => {
                w.u8(TAG_ABORT);
                encode_abort(reason, &mut w);
            }
            Body::Batch(bodies) => {
                assert!(
                    !bodies
                        .iter()
                        .any(|b| matches!(b, Body::Batch(_) | Body::Sealed { .. })),
                    "batches never nest and sealing is outermost"
                );
                w.u8(TAG_BATCH);
                w.u32(bodies.len() as u32);
                for body in bodies {
                    let encoded = body.encode();
                    w.u32(encoded.len() as u32);
                    w.buf.extend_from_slice(&encoded);
                }
            }
            Body::Sealed { seq, ack, inner } => {
                assert!(
                    !matches!(**inner, Body::Sealed { .. }),
                    "sealed envelopes never nest"
                );
                w.u8(TAG_SEALED);
                w.u64(*seq);
                w.u64(*ack);
                w.buf.extend_from_slice(&inner.encode());
            }
            Body::Ack { ack, sack } => {
                assert!(
                    sack.len() <= crate::reliable::SACK_MAX_RANGES,
                    "selective-ack range set exceeds the wire bound"
                );
                w.u8(TAG_ACK);
                w.u64(*ack);
                w.u8(sack.len() as u8);
                for &(lo, hi) in sack {
                    w.u64(lo);
                    w.u64(hi);
                }
            }
            Body::Nack { lo, hi } => {
                w.u8(TAG_NACK);
                w.u64(*lo);
                w.u64(*hi);
            }
            Body::Repair { ack, items } => {
                assert!(
                    !items
                        .iter()
                        .any(|(_, b)| matches!(b, Body::Sealed { .. } | Body::Repair { .. })),
                    "repair envelopes carry unsealed payloads and never nest"
                );
                w.u8(TAG_REPAIR);
                w.u64(*ack);
                w.u32(items.len() as u32);
                for (seq, body) in items {
                    w.u64(*seq);
                    let encoded = body.encode();
                    w.u32(encoded.len() as u32);
                    w.buf.extend_from_slice(&encoded);
                }
            }
            Body::SuspectDead { peer } => {
                w.u8(TAG_SUSPECT_DEAD);
                w.u32(*peer as u32);
            }
        }
        w.buf
    }

    /// The exact wire size in bytes, computed without allocating.
    pub fn encoded_len(&self) -> usize {
        match self {
            Body::Shares { .. } => 1 + 4 + 4 * 8,
            Body::Commit { commitments, .. } => {
                1 + 4
                    + 3 * 4
                    + (commitments.o().len() + commitments.q().len() + commitments.r().len()) * 8
            }
            Body::Lambda { included, .. } => 1 + 4 + 2 * 8 + 4 + included.len().div_ceil(8),
            Body::Disclose { f_values, .. } => 1 + 4 + 4 + f_values.len() * 8,
            Body::WinnerClaim { points, .. } => 1 + 4 + 4 + points.len() * (4 + 2 * 8),
            Body::Excluded { .. } => 1 + 4 + 2 * 8,
            Body::PaymentClaim { payments } => 1 + 4 + payments.len() * 8,
            Body::Abort { reason } => {
                1 + 1
                    + match reason {
                        AbortReason::Unresolvable
                        | AbortReason::NoWinner
                        | AbortReason::PaymentDisagreement => 0,
                        AbortReason::TooManyFaults { .. } => 8,
                        AbortReason::InvalidShares { .. }
                        | AbortReason::InvalidLambdaPsi { .. }
                        | AbortReason::InconsistentMask { .. }
                        | AbortReason::InvalidDisclosure { .. }
                        | AbortReason::InvalidExcluded { .. }
                        | AbortReason::PeerAborted { .. } => 4,
                    }
            }
            Body::Batch(bodies) => {
                1 + 4 + bodies.iter().map(|b| 4 + b.encoded_len()).sum::<usize>()
            }
            Body::Sealed { inner, .. } => 1 + 8 + 8 + inner.encoded_len(),
            Body::Ack { sack, .. } => 1 + 8 + 1 + sack.len() * 16,
            Body::Nack { .. } => 1 + 8 + 8,
            Body::Repair { items, .. } => {
                1 + 8
                    + 4
                    + items
                        .iter()
                        .map(|(_, b)| 8 + 4 + b.encoded_len())
                        .sum::<usize>()
            }
            Body::SuspectDead { .. } => 1 + 4,
        }
    }

    /// Decodes a message from its wire form. Commitment vectors are
    /// validated against `encoding` (all three must have `σ` entries).
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] for truncated input, unknown tags,
    /// oversized length prefixes, trailing bytes, or commitment vectors
    /// that do not match the encoding.
    pub fn decode(bytes: &[u8], encoding: &BidEncoding) -> Result<Body, DecodeError> {
        let mut r = Reader::new(bytes);
        let body = match r.u8()? {
            TAG_SHARES => Body::Shares {
                task: r.u32()? as usize,
                bundle: ShareBundle {
                    e: r.u64()?,
                    f: r.u64()?,
                    g: r.u64()?,
                    h: r.u64()?,
                },
            },
            TAG_COMMIT => {
                let task = r.u32()? as usize;
                let o = r.u64s()?;
                let q = r.u64s()?;
                let rr = r.u64s()?;
                let commitments = Commitments::from_parts(encoding, o, q, rr)
                    .map_err(|_| DecodeError::WrongCommitmentShape)?;
                Body::Commit { task, commitments }
            }
            TAG_LAMBDA => Body::Lambda {
                task: r.u32()? as usize,
                pair: LambdaPsi {
                    lambda: r.u64()?,
                    psi: r.u64()?,
                },
                included: r.bools()?,
            },
            TAG_DISCLOSE => Body::Disclose {
                task: r.u32()? as usize,
                f_values: r.u64s()?,
            },
            TAG_WINNER_CLAIM => {
                let task = r.u32()? as usize;
                let count = r.u32()?;
                if count > MAX_VEC {
                    return Err(DecodeError::LengthOverflow { len: count });
                }
                let mut points = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    points.push((r.u32()? as usize, r.u64()?, r.u64()?));
                }
                Body::WinnerClaim { task, points }
            }
            TAG_EXCLUDED => Body::Excluded {
                task: r.u32()? as usize,
                pair: LambdaPsi {
                    lambda: r.u64()?,
                    psi: r.u64()?,
                },
            },
            TAG_PAYMENT => Body::PaymentClaim {
                payments: r.u64s()?,
            },
            TAG_ABORT => Body::Abort {
                reason: decode_abort(&mut r)?,
            },
            TAG_BATCH => {
                let count = r.u32()?;
                if count > MAX_VEC {
                    return Err(DecodeError::LengthOverflow { len: count });
                }
                let mut bodies = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let len = r.u32()? as usize;
                    let start = r.pos;
                    let end = start.checked_add(len).ok_or(DecodeError::Truncated)?;
                    let slice = r.buf.get(start..end).ok_or(DecodeError::Truncated)?;
                    // Batches never nest, and sealing (plain or repair)
                    // is outermost.
                    if let Some(&tag @ (TAG_BATCH | TAG_SEALED | TAG_REPAIR)) = slice.first() {
                        return Err(DecodeError::BadTag { tag });
                    }
                    bodies.push(Body::decode(slice, encoding)?);
                    r.pos = end;
                }
                Body::Batch(bodies)
            }
            TAG_SEALED => {
                let seq = r.u64()?;
                let ack = r.u64()?;
                let slice = r.buf.get(r.pos..).ok_or(DecodeError::Truncated)?;
                // Sealed envelopes never nest, in either sealing form.
                if let Some(&tag @ (TAG_SEALED | TAG_REPAIR)) = slice.first() {
                    return Err(DecodeError::BadTag { tag });
                }
                let inner = Box::new(Body::decode(slice, encoding)?);
                r.pos = r.buf.len();
                Body::Sealed { seq, ack, inner }
            }
            TAG_ACK => {
                let ack = r.u64()?;
                let count = r.u8()?;
                if usize::from(count) > crate::reliable::SACK_MAX_RANGES {
                    return Err(DecodeError::LengthOverflow { len: count.into() });
                }
                let mut sack = Vec::with_capacity(count.into());
                // Ranges must sit beyond the cumulative ack, each run
                // non-empty, ascending and non-adjacent (an adjacent or
                // overlapping pair should have been one range).
                let mut floor = ack;
                for _ in 0..count {
                    let lo = r.u64()?;
                    let hi = r.u64()?;
                    if lo <= floor.saturating_add(1) || hi < lo {
                        return Err(DecodeError::MalformedRanges);
                    }
                    floor = hi;
                    sack.push((lo, hi));
                }
                Body::Ack { ack, sack }
            }
            TAG_NACK => {
                let lo = r.u64()?;
                let hi = r.u64()?;
                if lo > hi {
                    return Err(DecodeError::MalformedRanges);
                }
                Body::Nack { lo, hi }
            }
            TAG_REPAIR => {
                let ack = r.u64()?;
                let count = r.u32()?;
                if count > MAX_VEC {
                    return Err(DecodeError::LengthOverflow { len: count });
                }
                if count == 0 {
                    return Err(DecodeError::MalformedRanges);
                }
                let mut items = Vec::with_capacity(count as usize);
                let mut prev_seq = 0u64;
                for _ in 0..count {
                    let seq = r.u64()?;
                    if seq <= prev_seq {
                        return Err(DecodeError::MalformedRanges);
                    }
                    prev_seq = seq;
                    let len = r.u32()? as usize;
                    let start = r.pos;
                    let end = start.checked_add(len).ok_or(DecodeError::Truncated)?;
                    let slice = r.buf.get(start..end).ok_or(DecodeError::Truncated)?;
                    // Repair carries what a Sealed would: anything but
                    // another sealing layer.
                    if let Some(&tag @ (TAG_SEALED | TAG_REPAIR)) = slice.first() {
                        return Err(DecodeError::BadTag { tag });
                    }
                    items.push((seq, Body::decode(slice, encoding)?));
                    r.pos = end;
                }
                Body::Repair { ack, items }
            }
            TAG_SUSPECT_DEAD => Body::SuspectDead {
                peer: r.u32()? as usize,
            },
            tag => return Err(DecodeError::BadTag { tag }),
        };
        r.finish()?;
        Ok(body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmw_crypto::polynomials::BidPolynomials;
    use dmw_modmath::SchnorrGroup;
    use rand::SeedableRng;

    fn sample_bodies() -> (BidEncoding, Vec<Body>) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(55);
        let group = SchnorrGroup::generate(40, 16, &mut rng).unwrap();
        let encoding = BidEncoding::new(5, 1).unwrap();
        let polys = BidPolynomials::generate(&group, &encoding, 2, &mut rng).unwrap();
        let commitments = Commitments::commit(&group, &encoding, &polys);
        let bodies = vec![
            Body::Shares {
                task: 3,
                bundle: ShareBundle {
                    e: 1,
                    f: 2,
                    g: 3,
                    h: u64::MAX - 1,
                },
            },
            Body::Commit {
                task: 0,
                commitments,
            },
            Body::Lambda {
                task: 7,
                pair: LambdaPsi {
                    lambda: 42,
                    psi: 99,
                },
                included: vec![true, false, true, true, false],
            },
            Body::Disclose {
                task: 1,
                f_values: vec![5, 6, 7, 8, 9],
            },
            Body::WinnerClaim {
                task: 0,
                points: vec![(3, 11, 12), (4, 13, u64::MAX)],
            },
            Body::Excluded {
                task: 2,
                pair: LambdaPsi {
                    lambda: 10,
                    psi: 20,
                },
            },
            Body::PaymentClaim {
                payments: vec![0, 3, 0, 2, 0],
            },
            Body::Abort {
                reason: AbortReason::InvalidShares { sender: 4 },
            },
            Body::Abort {
                reason: AbortReason::Unresolvable,
            },
            Body::Abort {
                reason: AbortReason::TooManyFaults {
                    observed: 3,
                    tolerated: 1,
                },
            },
            Body::Abort {
                reason: AbortReason::PeerAborted { peer: 2 },
            },
            Body::Sealed {
                seq: 17,
                ack: u64::MAX - 3,
                inner: Box::new(Body::Disclose {
                    task: 1,
                    f_values: vec![5, 6, 7],
                }),
            },
            Body::Ack {
                ack: 41,
                sack: vec![],
            },
            Body::Ack {
                ack: 41,
                sack: vec![(43, 45), (47, 47), (50, u64::MAX)],
            },
            Body::Nack { lo: 7, hi: 9 },
            Body::Repair {
                ack: 12,
                items: vec![
                    (
                        3,
                        Body::Disclose {
                            task: 1,
                            f_values: vec![5, 6, 7],
                        },
                    ),
                    (
                        5,
                        Body::Batch(vec![Body::Excluded {
                            task: 2,
                            pair: LambdaPsi {
                                lambda: 10,
                                psi: 20,
                            },
                        }]),
                    ),
                ],
            },
            Body::SuspectDead { peer: 3 },
        ];
        (encoding, bodies)
    }

    #[test]
    fn round_trips_every_variant() {
        let (encoding, bodies) = sample_bodies();
        for body in bodies {
            let bytes = body.encode();
            let decoded = Body::decode(&bytes, &encoding).unwrap_or_else(|e| {
                panic!("decode failed for {}: {e}", body.kind());
            });
            assert_eq!(decoded, body, "{} round trip", body.kind());
        }
    }

    #[test]
    fn encoded_len_is_exact() {
        let (_, bodies) = sample_bodies();
        for body in bodies {
            assert_eq!(body.encoded_len(), body.encode().len(), "{}", body.kind());
        }
    }

    #[test]
    fn truncation_is_detected() {
        let (encoding, bodies) = sample_bodies();
        for body in bodies {
            let bytes = body.encode();
            for cut in 0..bytes.len() {
                let err = Body::decode(&bytes[..cut], &encoding);
                assert!(
                    err.is_err(),
                    "{} decoded from {cut} of {} bytes",
                    body.kind(),
                    bytes.len()
                );
            }
        }
    }

    #[test]
    fn corrupt_bytes_never_panic_and_errors_are_typed() {
        // Flip bits at every byte position of every message type: decode
        // must stay total — either a typed `DecodeError` or a valid
        // reinterpretation, never a panic or a truncating crash.
        let (encoding, bodies) = sample_bodies();
        assert_eq!(
            Body::decode(&[], &encoding),
            Err(DecodeError::Truncated),
            "empty input"
        );
        for body in bodies {
            let bytes = body.encode();
            for i in 0..bytes.len() {
                for flip in [0x01u8, 0x80, 0xFF] {
                    let mut corrupt = bytes.clone();
                    corrupt[i] ^= flip;
                    if let Err(e) = Body::decode(&corrupt, &encoding) {
                        assert!(
                            !e.to_string().is_empty(),
                            "{} error must describe itself",
                            body.kind()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let (encoding, bodies) = sample_bodies();
        let mut bytes = bodies[0].encode();
        bytes.push(0);
        assert_eq!(
            Body::decode(&bytes, &encoding),
            Err(DecodeError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn bad_tags_are_rejected() {
        let (encoding, _) = sample_bodies();
        assert_eq!(
            Body::decode(&[200], &encoding),
            Err(DecodeError::BadTag { tag: 200 })
        );
        // Bad abort tag.
        assert_eq!(
            Body::decode(&[TAG_ABORT, 99], &encoding),
            Err(DecodeError::BadTag { tag: 99 })
        );
    }

    #[test]
    fn oversized_lengths_are_rejected() {
        let (encoding, _) = sample_bodies();
        let mut w = Writer::new();
        w.u8(TAG_DISCLOSE);
        w.u32(0);
        w.u32(u32::MAX); // absurd element count
        assert_eq!(
            Body::decode(&w.buf, &encoding),
            Err(DecodeError::LengthOverflow { len: u32::MAX })
        );
    }

    #[test]
    fn wrong_commitment_shape_is_rejected() {
        let (encoding, _) = sample_bodies();
        let mut w = Writer::new();
        w.u8(TAG_COMMIT);
        w.u32(0);
        w.u64s(&[1, 2]); // sigma is 5, not 2
        w.u64s(&[1, 2]);
        w.u64s(&[1, 2]);
        assert_eq!(
            Body::decode(&w.buf, &encoding),
            Err(DecodeError::WrongCommitmentShape)
        );
    }

    #[test]
    fn sealed_envelopes_reject_nesting() {
        let (encoding, bodies) = sample_bodies();
        // A crafted Sealed-in-Sealed is rejected at decode.
        let inner = Body::Sealed {
            seq: 1,
            ack: 0,
            inner: Box::new(bodies[0].clone()),
        }
        .encode();
        let mut w = Writer::new();
        w.u8(TAG_SEALED);
        w.u64(2);
        w.u64(0);
        w.buf.extend_from_slice(&inner);
        assert_eq!(
            Body::decode(&w.buf, &encoding),
            Err(DecodeError::BadTag { tag: TAG_SEALED })
        );
        // A Sealed inside a Batch is rejected too: sealing is outermost.
        let mut w = Writer::new();
        w.u8(TAG_BATCH);
        w.u32(1);
        w.u32(inner.len() as u32);
        w.buf.extend_from_slice(&inner);
        assert_eq!(
            Body::decode(&w.buf, &encoding),
            Err(DecodeError::BadTag { tag: TAG_SEALED })
        );
    }

    #[test]
    fn sealed_batch_round_trips() {
        // The real recovery-mode shape: coalesce first, seal second.
        let (encoding, bodies) = sample_bodies();
        let plain: Vec<Body> = bodies
            .iter()
            .filter(|b| !matches!(b, Body::Sealed { .. } | Body::Repair { .. }))
            .cloned()
            .collect();
        let sealed = Body::Sealed {
            seq: 9,
            ack: 4,
            inner: Box::new(Body::Batch(plain)),
        };
        let bytes = sealed.encode();
        assert_eq!(bytes.len(), sealed.encoded_len());
        assert_eq!(Body::decode(&bytes, &encoding).unwrap(), sealed);
    }

    #[test]
    fn batch_round_trips_and_rejects_nesting() {
        let (encoding, mut bodies) = sample_bodies();
        // Sealing is outermost, so the batch fixture excludes envelopes
        // of both sealing forms.
        bodies.retain(|b| !matches!(b, Body::Sealed { .. } | Body::Repair { .. }));
        let batch = Body::Batch(bodies.clone());
        let bytes = batch.encode();
        assert_eq!(bytes.len(), batch.encoded_len());
        assert_eq!(Body::decode(&bytes, &encoding).unwrap(), batch);
        // A crafted nested batch is rejected.
        let inner = Body::Batch(vec![bodies[0].clone()]).encode();
        let mut w = Writer::new();
        w.u8(TAG_BATCH);
        w.u32(1);
        w.u32(inner.len() as u32);
        w.buf.extend_from_slice(&inner);
        assert_eq!(
            Body::decode(&w.buf, &encoding),
            Err(DecodeError::BadTag { tag: TAG_BATCH })
        );
    }

    #[test]
    fn repair_envelopes_reject_nesting() {
        let (encoding, bodies) = sample_bodies();
        let inner = Body::Sealed {
            seq: 1,
            ack: 0,
            inner: Box::new(bodies[0].clone()),
        }
        .encode();
        // A Sealed inside a Repair item is rejected.
        let mut w = Writer::new();
        w.u8(TAG_REPAIR);
        w.u64(0);
        w.u32(1);
        w.u64(1);
        w.u32(inner.len() as u32);
        w.buf.extend_from_slice(&inner);
        assert_eq!(
            Body::decode(&w.buf, &encoding),
            Err(DecodeError::BadTag { tag: TAG_SEALED })
        );
        // A Repair inside a Sealed is rejected too.
        let repair = Body::Repair {
            ack: 0,
            items: vec![(1, bodies[0].clone())],
        }
        .encode();
        let mut w = Writer::new();
        w.u8(TAG_SEALED);
        w.u64(2);
        w.u64(0);
        w.buf.extend_from_slice(&repair);
        assert_eq!(
            Body::decode(&w.buf, &encoding),
            Err(DecodeError::BadTag { tag: TAG_REPAIR })
        );
    }

    #[test]
    fn malformed_ranges_are_rejected() {
        let (encoding, bodies) = sample_bodies();
        // Nack with lo > hi.
        let mut w = Writer::new();
        w.u8(TAG_NACK);
        w.u64(9);
        w.u64(7);
        assert_eq!(
            Body::decode(&w.buf, &encoding),
            Err(DecodeError::MalformedRanges)
        );
        // Sack range adjacent to the cumulative ack (should have been
        // absorbed into it).
        let mut w = Writer::new();
        w.u8(TAG_ACK);
        w.u64(5);
        w.u8(1);
        w.u64(6);
        w.u64(8);
        assert_eq!(
            Body::decode(&w.buf, &encoding),
            Err(DecodeError::MalformedRanges)
        );
        // Descending sack ranges.
        let mut w = Writer::new();
        w.u8(TAG_ACK);
        w.u64(0);
        w.u8(2);
        w.u64(10);
        w.u64(12);
        w.u64(3);
        w.u64(4);
        assert_eq!(
            Body::decode(&w.buf, &encoding),
            Err(DecodeError::MalformedRanges)
        );
        // Sack range set over the wire bound.
        let mut w = Writer::new();
        w.u8(TAG_ACK);
        w.u64(0);
        w.u8((crate::reliable::SACK_MAX_RANGES + 1) as u8);
        assert_eq!(
            Body::decode(&w.buf, &encoding),
            Err(DecodeError::LengthOverflow {
                len: (crate::reliable::SACK_MAX_RANGES + 1) as u32
            })
        );
        // Empty repair.
        let mut w = Writer::new();
        w.u8(TAG_REPAIR);
        w.u64(0);
        w.u32(0);
        assert_eq!(
            Body::decode(&w.buf, &encoding),
            Err(DecodeError::MalformedRanges)
        );
        // Non-ascending repair sequence numbers.
        let item = bodies[0].encode();
        let mut w = Writer::new();
        w.u8(TAG_REPAIR);
        w.u64(0);
        w.u32(2);
        for seq in [4u64, 4] {
            w.u64(seq);
            w.u32(item.len() as u32);
            w.buf.extend_from_slice(&item);
        }
        assert_eq!(
            Body::decode(&w.buf, &encoding),
            Err(DecodeError::MalformedRanges)
        );
    }

    #[test]
    fn mask_bit_packing_handles_boundaries() {
        let (encoding, _) = sample_bodies();
        for len in [1usize, 7, 8, 9, 16, 17] {
            let included: Vec<bool> = (0..len).map(|i| i % 3 == 0).collect();
            let body = Body::Lambda {
                task: 0,
                pair: LambdaPsi { lambda: 1, psi: 2 },
                included: included.clone(),
            };
            let decoded = Body::decode(&body.encode(), &encoding).unwrap();
            assert_eq!(decoded, body, "mask length {len}");
        }
    }
}
