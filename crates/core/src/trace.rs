//! Message-sequence traces — the reproduction of the paper's Fig. 2.
//!
//! Fig. 2 shows "the sequence of messages exchanged among participants":
//! solid arrows for point-to-point share transmissions, dashed arrows for
//! published (broadcast) values. The runner records every transmission as
//! a [`TraceEvent`]; [`render_sequence_chart`] prints the ASCII equivalent
//! of the figure, and the trace-conformance integration test asserts the
//! phase structure matches the paper's.

use dmw_simnet::Recipient;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One recorded transmission.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Scheduler tick (lockstep: synchronous round) in which the message
    /// was sent.
    pub round: u64,
    /// Logical protocol phase the sender acted in when it emitted the
    /// message (see [`crate::phases::Phase::label`]). Traces recorded
    /// before this field existed deserialize with an empty label.
    #[serde(default)]
    pub phase: &'static str,
    /// Sender index.
    pub from: usize,
    /// Unicast target, or `None` for a published (broadcast) message.
    pub to: Option<usize>,
    /// Message kind label (see [`crate::messages::Body::kind`]).
    pub kind: &'static str,
    /// Task index for task-scoped messages.
    pub task: Option<usize>,
}

impl TraceEvent {
    /// Builds an event from a send decision.
    pub fn new(
        round: u64,
        phase: &'static str,
        from: usize,
        recipient: &Recipient,
        kind: &'static str,
        task: Option<usize>,
    ) -> Self {
        let to = match recipient {
            Recipient::Unicast(node) => Some(node.0),
            Recipient::Broadcast => None,
        };
        TraceEvent {
            round,
            phase,
            from,
            to,
            kind,
            task,
        }
    }

    /// `true` for published (dashed-arrow) messages.
    pub fn is_broadcast(&self) -> bool {
        self.to.is_none()
    }
}

/// The protocol phase labels of Fig. 2, in wire order.
pub const PHASE_ORDER: [&str; 6] = [
    "shares",
    "commitments",
    "lambda-psi",
    "f-disclosure",
    "excluded-lambda-psi",
    "payment-claim",
];

/// Renders a trace as an ASCII sequence chart in the style of the paper's
/// Fig. 2: one line per transmission, `-->` for point-to-point (solid
/// arrows), `==>*` for published messages (dashed arrows).
pub fn render_sequence_chart(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    let mut last_round = u64::MAX;
    for e in events {
        if e.round != last_round {
            let _ = writeln!(out, "── round {} ──", e.round);
            last_round = e.round;
        }
        let task = e.task.map(|t| format!(" [T{}]", t + 1)).unwrap_or_default();
        match e.to {
            Some(to) => {
                let _ = writeln!(out, "  A{} --> A{}: {}{}", e.from + 1, to + 1, e.kind, task);
            }
            None => {
                let _ = writeln!(out, "  A{} ==>* : {}{}", e.from + 1, e.kind, task);
            }
        }
    }
    out
}

/// Renders a trace grouped by the sender's logical phase instead of the
/// scheduler tick — the natural view once delivery timing is a transport
/// parameter and ticks no longer map 1:1 onto protocol steps.
pub fn render_phase_chart(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    let mut last_phase = "";
    for e in events {
        if e.phase != last_phase {
            let _ = writeln!(out, "── phase {} ──", e.phase);
            last_phase = e.phase;
        }
        let task = e.task.map(|t| format!(" [T{}]", t + 1)).unwrap_or_default();
        match e.to {
            Some(to) => {
                let _ = writeln!(out, "  A{} --> A{}: {}{}", e.from + 1, to + 1, e.kind, task);
            }
            None => {
                let _ = writeln!(out, "  A{} ==>* : {}{}", e.from + 1, e.kind, task);
            }
        }
    }
    out
}

/// Counts events of each kind, a compact summary used by experiments.
pub fn kind_histogram(events: &[TraceEvent]) -> Vec<(&'static str, usize)> {
    let mut hist: Vec<(&'static str, usize)> = Vec::new();
    for e in events {
        match hist.iter_mut().find(|(k, _)| *k == e.kind) {
            Some((_, count)) => *count += 1,
            None => hist.push((e.kind, 1)),
        }
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmw_simnet::NodeId;

    fn sample() -> Vec<TraceEvent> {
        vec![
            TraceEvent::new(
                0,
                "bidding",
                0,
                &Recipient::Unicast(NodeId(1)),
                "shares",
                Some(0),
            ),
            TraceEvent::new(
                0,
                "bidding",
                0,
                &Recipient::Broadcast,
                "commitments",
                Some(0),
            ),
            TraceEvent::new(
                1,
                "commitments",
                1,
                &Recipient::Broadcast,
                "lambda-psi",
                Some(0),
            ),
        ]
    }

    #[test]
    fn events_classify_broadcasts() {
        let events = sample();
        assert!(!events[0].is_broadcast());
        assert_eq!(events[0].to, Some(1));
        assert!(events[1].is_broadcast());
    }

    #[test]
    fn chart_renders_rounds_and_arrows() {
        let chart = render_sequence_chart(&sample());
        assert!(chart.contains("── round 0 ──"));
        assert!(chart.contains("A1 --> A2: shares [T1]"));
        assert!(chart.contains("A1 ==>* : commitments [T1]"));
        assert!(chart.contains("── round 1 ──"));
    }

    #[test]
    fn phase_chart_groups_by_logical_phase() {
        let chart = render_phase_chart(&sample());
        assert!(chart.contains("── phase bidding ──"));
        assert!(chart.contains("── phase commitments ──"));
        assert!(chart.contains("A2 ==>* : lambda-psi [T1]"));
        // The two bidding events share one header.
        assert_eq!(chart.matches("── phase bidding ──").count(), 1);
    }

    #[test]
    fn histogram_counts_kinds() {
        let hist = kind_histogram(&sample());
        assert!(hist.contains(&("shares", 1)));
        assert!(hist.contains(&("commitments", 1)));
        assert!(hist.contains(&("lambda-psi", 1)));
    }
}
