//! Error and abort types for the DMW protocol.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Why an agent aborted the protocol (Theorems 4 and 8 hinge on honest
/// agents detecting these conditions and terminating, zeroing everyone's
/// utility).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum AbortReason {
    /// A received share bundle failed equations (7)–(9) against the
    /// sender's commitments (Phase III.1).
    InvalidShares {
        /// The offending sender.
        sender: usize,
    },
    /// A published `(Λ, Ψ)` pair failed equation (11) (Phase III.2).
    InvalidLambdaPsi {
        /// The offending publisher.
        publisher: usize,
    },
    /// A publisher's claimed participant mask disagrees with this agent's
    /// view of who is alive — evidence of selective share delivery.
    InconsistentMask {
        /// The offending publisher.
        publisher: usize,
    },
    /// Disclosed `f`-shares failed equation (13).
    InvalidDisclosure {
        /// The disclosing agent.
        discloser: usize,
    },
    /// An excluded `(Λ', Ψ')` pair failed the post-exclusion equation (11).
    InvalidExcluded {
        /// The offending publisher.
        publisher: usize,
    },
    /// Degree resolution failed for every candidate bid (equation (12)) —
    /// either more than `c` participants are faulty or published values
    /// were corrupted without failing pointwise checks.
    Unresolvable,
    /// No disclosed polynomial matched the winning degree (equation (14)).
    NoWinner,
    /// Too many agents fell silent: fewer than the resolution threshold
    /// remain (the paper's Open Problem 11 boundary).
    TooManyFaults {
        /// Number of silent/faulty agents observed.
        observed: usize,
        /// The tolerated maximum `c`.
        tolerated: usize,
    },
    /// Payment claims submitted to the payment infrastructure disagree
    /// (Phase IV: "the payment infrastructure issues the payment … if the
    /// participating agents agree").
    PaymentDisagreement,
    /// Another agent broadcast an abort; this agent honoured it.
    PeerAborted {
        /// The first peer observed aborting.
        peer: usize,
    },
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbortReason::InvalidShares { sender } => {
                write!(f, "shares from agent {sender} fail commitment verification")
            }
            AbortReason::InvalidLambdaPsi { publisher } => {
                write!(f, "lambda/psi from agent {publisher} fails equation (11)")
            }
            AbortReason::InconsistentMask { publisher } => {
                write!(
                    f,
                    "agent {publisher} claims a different set of live participants"
                )
            }
            AbortReason::InvalidDisclosure { discloser } => {
                write!(
                    f,
                    "f-share disclosure from agent {discloser} fails equation (13)"
                )
            }
            AbortReason::InvalidExcluded { publisher } => {
                write!(
                    f,
                    "excluded lambda/psi from agent {publisher} fails verification"
                )
            }
            AbortReason::Unresolvable => write!(f, "degree resolution failed for every candidate"),
            AbortReason::NoWinner => write!(f, "no agent proves ownership of the winning bid"),
            AbortReason::TooManyFaults {
                observed,
                tolerated,
            } => {
                write!(
                    f,
                    "{observed} faulty agents exceed the tolerated {tolerated}"
                )
            }
            AbortReason::PaymentDisagreement => write!(f, "payment claims disagree"),
            AbortReason::PeerAborted { peer } => write!(f, "agent {peer} aborted the protocol"),
        }
    }
}

/// Errors surfaced by the DMW crate's public API.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DmwError {
    /// Invalid protocol configuration.
    Config {
        /// Human-readable cause.
        reason: String,
    },
    /// A bid matrix entry is outside the discrete bid set `W`.
    BidOutOfRange {
        /// Agent index.
        agent: usize,
        /// Task index.
        task: usize,
        /// The offending bid.
        bid: u64,
        /// The largest admissible bid.
        w_max: u64,
    },
    /// The bid matrix shape does not match the configuration.
    ShapeMismatch {
        /// Agents in the matrix.
        agents: usize,
        /// Agents in the configuration.
        expected_agents: usize,
    },
    /// The run aborted; inspect the reason and the set of detecting agents.
    Aborted {
        /// Why the protocol terminated.
        reason: AbortReason,
    },
    /// A lower-layer cryptographic error.
    Crypto(dmw_crypto::CryptoError),
    /// A lower-layer number-theoretic error.
    ModMath(dmw_modmath::ModMathError),
    /// A scheduling-layer error.
    Mechanism(dmw_mechanism::MechanismError),
}

impl fmt::Display for DmwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DmwError::Config { reason } => write!(f, "invalid configuration: {reason}"),
            DmwError::BidOutOfRange {
                agent,
                task,
                bid,
                w_max,
            } => {
                write!(
                    f,
                    "agent {agent} bid {bid} on task {task}, outside 1..={w_max}"
                )
            }
            DmwError::ShapeMismatch {
                agents,
                expected_agents,
            } => {
                write!(
                    f,
                    "bid matrix has {agents} agents, configuration expects {expected_agents}"
                )
            }
            DmwError::Aborted { reason } => write!(f, "protocol aborted: {reason}"),
            DmwError::Crypto(e) => write!(f, "crypto layer: {e}"),
            DmwError::ModMath(e) => write!(f, "modular arithmetic layer: {e}"),
            DmwError::Mechanism(e) => write!(f, "mechanism layer: {e}"),
        }
    }
}

impl Error for DmwError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DmwError::Crypto(e) => Some(e),
            DmwError::ModMath(e) => Some(e),
            DmwError::Mechanism(e) => Some(e),
            _ => None,
        }
    }
}

impl From<dmw_crypto::CryptoError> for DmwError {
    fn from(e: dmw_crypto::CryptoError) -> Self {
        DmwError::Crypto(e)
    }
}

impl From<dmw_modmath::ModMathError> for DmwError {
    fn from(e: dmw_modmath::ModMathError) -> Self {
        DmwError::ModMath(e)
    }
}

impl From<dmw_mechanism::MechanismError> for DmwError {
    fn from(e: dmw_mechanism::MechanismError) -> Self {
        DmwError::Mechanism(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_well_behaved() {
        fn assert_traits<T: Send + Sync + std::error::Error>() {}
        assert_traits::<DmwError>();
        let e = DmwError::Aborted {
            reason: AbortReason::Unresolvable,
        };
        assert!(e.to_string().contains("aborted"));
    }

    #[test]
    fn abort_reasons_display() {
        for reason in [
            AbortReason::InvalidShares { sender: 1 },
            AbortReason::InvalidLambdaPsi { publisher: 2 },
            AbortReason::InconsistentMask { publisher: 0 },
            AbortReason::InvalidDisclosure { discloser: 3 },
            AbortReason::InvalidExcluded { publisher: 1 },
            AbortReason::Unresolvable,
            AbortReason::NoWinner,
            AbortReason::TooManyFaults {
                observed: 3,
                tolerated: 1,
            },
            AbortReason::PaymentDisagreement,
            AbortReason::PeerAborted { peer: 4 },
        ] {
            assert!(!reason.to_string().is_empty());
        }
    }

    #[test]
    fn source_chains_to_lower_layers() {
        let e = DmwError::Crypto(dmw_crypto::CryptoError::ResolutionFailed);
        assert!(e.source().is_some());
        let e = DmwError::Config { reason: "x".into() };
        assert!(e.source().is_none());
    }
}
