//! Phase I — *Initialization*: the published protocol parameters.
//!
//! "The parameters `p, q, z1, z2, c, A` and `W` are published" (step I.1).
//! [`DmwConfig`] bundles exactly those: the Schnorr group `(p, q, z1, z2)`,
//! the fault threshold `c` (inside [`BidEncoding`] together with `W`), and
//! the pseudonym set `A = {α_1, …, α_n}` of distinct non-zero elements of
//! the exponent field.

use crate::error::DmwError;
use dmw_crypto::BidEncoding;
use dmw_modmath::SchnorrGroup;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Default bit size of the group modulus `p` used by
/// [`DmwConfig::generate`]. Large enough to make accidental resolutions
/// (probability `≈ |W|/q`) negligible in experiments, small enough that a
/// laptop sweeps thousands of auctions; [`DmwConfig::generate_with_bits`]
/// exposes the full range for the Table 1 `log p` sweep.
pub const DEFAULT_P_BITS: u32 = 48;

/// Default bit size of the subgroup order `q`.
pub const DEFAULT_Q_BITS: u32 = 24;

/// The published parameters of one DMW deployment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DmwConfig {
    group: SchnorrGroup,
    encoding: BidEncoding,
    pseudonyms: Vec<u64>,
}

impl DmwConfig {
    /// Generates parameters for `n` agents tolerating `c` faults, with the
    /// default group sizes.
    ///
    /// # Errors
    ///
    /// Returns [`DmwError::Config`] when `(n, c)` admit no bid encoding or
    /// group generation fails.
    pub fn generate<R: Rng + ?Sized>(n: usize, c: usize, rng: &mut R) -> Result<Self, DmwError> {
        Self::generate_with_bits(n, c, DEFAULT_P_BITS, DEFAULT_Q_BITS, rng)
    }

    /// Generates parameters with explicit group bit sizes — the knob the
    /// Table 1 computation experiment turns to isolate the `log p` factor.
    ///
    /// # Errors
    ///
    /// Returns [`DmwError::Config`] when the sizes are invalid, the group
    /// cannot be generated, or `q` is too small to host `n` pseudonyms.
    pub fn generate_with_bits<R: Rng + ?Sized>(
        n: usize,
        c: usize,
        p_bits: u32,
        q_bits: u32,
        rng: &mut R,
    ) -> Result<Self, DmwError> {
        let encoding = BidEncoding::new(n, c).map_err(|e| DmwError::Config {
            reason: e.to_string(),
        })?;
        let group = SchnorrGroup::generate(p_bits, q_bits, rng).map_err(|e| DmwError::Config {
            reason: e.to_string(),
        })?;
        if group.q() < encoding.min_group_order() {
            return Err(DmwError::Config {
                reason: format!("subgroup order {} cannot host {} pseudonyms", group.q(), n),
            });
        }
        let pseudonyms = group.zq().rand_distinct_nonzero(n, rng);
        Ok(DmwConfig {
            group,
            encoding,
            pseudonyms,
        })
    }

    /// Assembles a configuration from pre-agreed parts (e.g. replayed from
    /// a published initialization transcript).
    ///
    /// # Errors
    ///
    /// Returns [`DmwError::Config`] when the pseudonym set is not `n`
    /// distinct non-zero residues of `Z_q`.
    pub fn from_parts(
        group: SchnorrGroup,
        encoding: BidEncoding,
        pseudonyms: Vec<u64>,
    ) -> Result<Self, DmwError> {
        if pseudonyms.len() != encoding.agents() {
            return Err(DmwError::Config {
                reason: format!(
                    "{} pseudonyms supplied for {} agents",
                    pseudonyms.len(),
                    encoding.agents()
                ),
            });
        }
        // HashSet is safe here (dmw-lint L10): membership probes only,
        // never iterated.
        let mut seen = std::collections::HashSet::new();
        for &a in &pseudonyms {
            if a == 0 || a >= group.q() || !seen.insert(a) {
                return Err(DmwError::Config {
                    reason: format!("pseudonym {a} is zero, out of range or duplicated"),
                });
            }
        }
        Ok(DmwConfig {
            group,
            encoding,
            pseudonyms,
        })
    }

    /// The Schnorr group `(p, q, z1, z2)`.
    pub fn group(&self) -> &SchnorrGroup {
        &self.group
    }

    /// The bid encoding (embeds `c` and `W`).
    pub fn encoding(&self) -> &BidEncoding {
        &self.encoding
    }

    /// The pseudonym set `A`, indexed by agent.
    pub fn pseudonyms(&self) -> &[u64] {
        &self.pseudonyms
    }

    /// Number of agents `n`.
    pub fn agents(&self) -> usize {
        self.encoding.agents()
    }

    /// The pseudonym of one agent.
    ///
    /// # Panics
    ///
    /// Panics if `agent` is out of range.
    pub fn pseudonym(&self, agent: usize) -> u64 {
        self.pseudonyms[agent]
    }
}

/// Derives one agent's private RNG seed from the run seed by SplitMix64
/// constant mixing. This is deliberate *machine* arithmetic on an opaque
/// bit pattern — not field arithmetic — so it lives here, outside the
/// protocol modules that dmw-lint holds to the `dmw_modmath` API.
pub(crate) fn agent_seed(run_seed: u64, me: usize) -> u64 {
    run_seed ^ (me as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Derives the seed of one trial's private RNG stream from a batch seed —
/// the seed-mixing contract of the batch engine
/// ([`crate::batch::BatchRunner`]).
///
/// Trial `t` of a batch always draws from
/// `StdRng::seed_from_u64(trial_seed(batch_seed, t))`, whatever thread
/// executes it and in whatever order trials finish; this is what makes
/// batch results bit-identical to running the trials sequentially. The
/// construction is the same SplitMix64 machine arithmetic as
/// `agent_seed`, run through the full finalizer (and offset by a
/// distinct odd multiplier) so neighbouring trials share no low-bit
/// structure and trial streams never collide with the per-agent streams
/// derived inside a run.
#[must_use]
pub fn trial_seed(batch_seed: u64, trial: u64) -> u64 {
    let mut z = batch_seed ^ trial.wrapping_mul(0xA076_1D64_78BD_642F);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(2024)
    }

    #[test]
    fn generate_produces_consistent_parameters() {
        let cfg = DmwConfig::generate(6, 1, &mut rng()).unwrap();
        assert_eq!(cfg.agents(), 6);
        assert_eq!(cfg.pseudonyms().len(), 6);
        assert_eq!(cfg.encoding().faults(), 1);
        // Pseudonyms are distinct non-zero residues of Z_q.
        let set: std::collections::HashSet<_> = cfg.pseudonyms().iter().collect();
        assert_eq!(set.len(), 6);
        assert!(cfg
            .pseudonyms()
            .iter()
            .all(|&a| a > 0 && a < cfg.group().q()));
    }

    #[test]
    fn generate_rejects_bad_shapes() {
        assert!(DmwConfig::generate(2, 1, &mut rng()).is_err());
        assert!(DmwConfig::generate_with_bits(6, 1, 64, 16, &mut rng()).is_err());
    }

    #[test]
    fn from_parts_validates_pseudonyms() {
        let cfg = DmwConfig::generate(4, 0, &mut rng()).unwrap();
        let group = *cfg.group();
        let encoding = *cfg.encoding();
        // Valid round-trip.
        assert!(DmwConfig::from_parts(group, encoding, cfg.pseudonyms().to_vec()).is_ok());
        // Wrong count.
        assert!(DmwConfig::from_parts(group, encoding, vec![1, 2]).is_err());
        // Zero pseudonym.
        assert!(DmwConfig::from_parts(group, encoding, vec![0, 2, 3, 4]).is_err());
        // Duplicate.
        assert!(DmwConfig::from_parts(group, encoding, vec![2, 2, 3, 4]).is_err());
        // Out of range.
        assert!(DmwConfig::from_parts(group, encoding, vec![1, 2, 3, group.q()]).is_err());
    }
}
